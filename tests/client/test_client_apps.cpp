// The apps retrofitted onto the client API (ISSUE 5): the session-based
// overloads of ktruss, triangle counting, BC and direction-optimized BFS
// must reproduce the classic plan/executor paths exactly — over the local
// backend and (spot-checked) over a shard fleet.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/bc.hpp"
#include "apps/dobfs.hpp"
#include "apps/ktruss.hpp"
#include "apps/tricount.hpp"
#include "client/client.hpp"
#include "client/local_backend.hpp"
#include "client/sharded_backend.hpp"
#include "gen/rmat.hpp"
#include "matrix/ops.hpp"
#include "service/shard.hpp"

using namespace msx;
using namespace msx::client;

using IT = int32_t;
using VT = double;

namespace {

CSRMatrix<IT, VT> test_graph(int scale, int seed) {
  auto g = rmat<IT, VT>(scale, static_cast<std::uint64_t>(seed));
  g = symmetrize_pattern(g);
  g = remove_diagonal(g);
  return g;
}

}  // namespace

TEST(ClientApps, KTrussRoundLoopMatchesPlanPath) {
  const auto g = test_graph(7, 5);
  const auto want = ktruss(g, 4);

  auto client = make_local_client<PlusPair<std::int64_t>, IT, std::int64_t>();
  auto session = client.open_session();
  const auto got = ktruss(g, 4, session);

  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.remaining_edges, want.remaining_edges);
  EXPECT_TRUE(got.truss == want.truss);
}

TEST(ClientApps, TriangleCountMatchesPlanPathAcrossVariants) {
  const auto g = test_graph(7, 9);
  auto client = make_local_client<PlusPair<std::int64_t>, IT, std::int64_t>();
  auto session = client.open_session();
  for (auto variant : {TriCountVariant::kLL, TriCountVariant::kLU,
                       TriCountVariant::kUU}) {
    const auto want = triangle_count(g, MaskedOptions{}, variant);
    const auto got = triangle_count(g, session, MaskedOptions{}, variant);
    EXPECT_EQ(got.triangles, want.triangles);
  }
}

TEST(ClientApps, BetweennessCentralityMatchesMonolithic) {
  const auto g = test_graph(7, 3);
  std::vector<IT> sources{0, 3, 5, 9, 12, 17, 21, 30};
  const auto want = betweenness_centrality(g, sources);

  auto client = make_local_client<PlusTimes<double>, IT, double>();
  auto session = client.open_session({.max_in_flight = 8});
  const auto got = betweenness_centrality(g, sources, session,
                                          /*chunk_size=*/3);

  ASSERT_EQ(got.centrality.size(), want.centrality.size());
  for (std::size_t v = 0; v < want.centrality.size(); ++v) {
    EXPECT_DOUBLE_EQ(got.centrality[v], want.centrality[v]) << "vertex " << v;
  }
  EXPECT_EQ(got.depth, want.depth);
}

TEST(ClientApps, DOBFSMatchesPlanPath) {
  const auto g = test_graph(7, 7);
  const auto want = direction_optimized_bfs(g, IT{0});

  auto client = make_local_client<PlusPair<std::int64_t>, IT, std::int64_t>();
  auto session = client.open_session();
  const auto got = direction_optimized_bfs(g, IT{0}, session);

  EXPECT_EQ(got.levels, want.levels);
  EXPECT_EQ(got.depth, want.depth);
  EXPECT_EQ(got.push_levels, want.push_levels);
  EXPECT_EQ(got.pull_levels, want.pull_levels);
}

TEST(ClientApps, KTrussOverShardFleetMatchesLocal) {
  // The same app call, now served by a two-shard fleet: the round loop's
  // registered structure crosses the wire once per round, submits are
  // flag-only, results identical.
  const auto g = test_graph(6, 11);
  const auto want = ktruss(g, 3);

  using SRi = PlusPair<std::int64_t>;
  std::vector<std::unique_ptr<service::ServiceShard<SRi, IT, std::int64_t>>>
      shards;
  std::vector<service::ShardEndpoint> endpoints;
  for (int i = 0; i < 2; ++i) {
    shards.push_back(
        std::make_unique<service::ServiceShard<SRi, IT, std::int64_t>>());
    auto listener = std::make_unique<service::LoopbackListener>();
    auto* raw = listener.get();
    shards.back()->serve(std::move(listener));
    endpoints.push_back(service::ShardEndpoint{
        "shard-" + std::to_string(i), [raw] { return raw->connect(); }});
  }
  auto client = make_sharded_client<SRi, IT, std::int64_t>(endpoints);
  auto session = client.open_session();
  const auto got = ktruss(g, 3, session);

  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_TRUE(got.truss == want.truss);
}
