// Distributed 2D products end to end (ISSUE 8): an oversized masked product
// submitted through MaskedClient/ShardedBackend is cut into an A-row-panel x
// B-col-panel grid, scattered over loopback shards, and the merged result is
// bit-identical to single-shard masked_spgemm — for every algorithm x phase
// combination, both mask kinds, aliased self-masks, degenerate grids and
// empty panels. Replica failover mid-scatter loses no panel task, streaming
// updates keep every panel shard version-coherent, and the EWMA / dist2d
// stats surface what happened.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "client/client.hpp"
#include "client/sharded_backend.hpp"
#include "core/masked_spgemm.hpp"
#include "gen/erdos_renyi.hpp"
#include "service/distributed.hpp"
#include "service/shard.hpp"

using namespace msx;
using namespace msx::client;
using msx::service::LoopbackListener;
using msx::service::ServiceShard;
using msx::service::ShardEndpoint;

using IT = int32_t;
using VT = double;
using SR = PlusTimes<VT>;
using Mat = CSRMatrix<IT, VT>;
using Shard = ServiceShard<SR, IT, VT>;
using Client = MaskedClient<SR, IT, VT>;
using Sharded = ShardedBackend<SR, IT, VT>;

namespace {

struct Fleet {
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<ShardEndpoint> endpoints;

  explicit Fleet(std::size_t n, service::ShardConfig cfg = {}) {
    for (std::size_t i = 0; i < n; ++i) {
      shards.push_back(std::make_unique<Shard>(cfg));
      auto listener = std::make_unique<LoopbackListener>();
      auto* raw = listener.get();
      shards.back()->serve(std::move(listener));
      endpoints.push_back(ShardEndpoint{"shard-" + std::to_string(i),
                                        [raw] { return raw->connect(); }});
    }
  }
};

MaskedOptions force2d(int rows, int cols) {
  MaskedOptions o;
  o.dist = Dist2D::kForce;
  o.dist_row_panels = rows;
  o.dist_col_panels = cols;
  return o;
}

}  // namespace

// Every algorithm x phase combination goes through the forced 2x2 grid and
// comes back bit-identical to single-shard execution; complemented masks
// likewise for every algorithm that supports them. Bit-identity holds with
// arbitrary real values because each output entry accumulates the same
// contributions in the same k order as the undecomposed product.
TEST(Client2D, ForcedGridBitIdenticalEveryAlgoPhase) {
  Fleet fleet(3);
  auto backend = std::make_shared<Sharded>(fleet.endpoints);
  Client client(backend);
  auto session = client.open_session({.max_in_flight = 8});

  const IT n = 120;
  auto b = std::make_shared<const Mat>(erdos_renyi<IT, VT>(n, n, 6, 901));
  auto m = std::make_shared<const Mat>(erdos_renyi<IT, VT>(n, n, 8, 902));
  auto a = std::make_shared<const Mat>(erdos_renyi<IT, VT>(n, n, 6, 903));
  auto handle = session.register_structure(
      StructureSpec<IT, VT>(b).mask(m).replicate(2));

  struct Algo {
    MaskedAlgo algo;
    const char* name;
    bool complement_ok;
  };
  const Algo algos[] = {
      {MaskedAlgo::kMSA, "msa", true},
      {MaskedAlgo::kHash, "hash", true},
      {MaskedAlgo::kMCA, "mca", false},  // no complement support
      {MaskedAlgo::kHeap, "heap", true},
      {MaskedAlgo::kHeapDot, "heapdot", true},
      {MaskedAlgo::kInner, "inner", true},
      {MaskedAlgo::kHybrid, "hybrid", true},
      {MaskedAlgo::kMSABitmap, "msabitmap", true},
      {MaskedAlgo::kAuto, "auto", true},
  };
  const PhaseMode phases[] = {PhaseMode::kOnePhase, PhaseMode::kTwoPhase};

  std::uint64_t products = 0;
  for (const auto& al : algos) {
    for (const auto ph : phases) {
      for (const auto kind : {MaskKind::kMask, MaskKind::kComplement}) {
        if (kind == MaskKind::kComplement && !al.complement_ok) continue;
        MaskedOptions mo = force2d(2, 2);
        mo.algo = al.algo;
        mo.phases = ph;
        mo.kind = kind;
        const Mat want = masked_spgemm<SR>(*a, *b, *m, mo);
        auto res = session.submit(a, handle, {.masked = mo}).get();
        ASSERT_TRUE(res.ok())
            << al.name << (ph == PhaseMode::kOnePhase ? "/1P" : "/2P")
            << (kind == MaskKind::kComplement ? "/comp: " : ": ")
            << res.message;
        EXPECT_TRUE(res.matrix == want)
            << al.name << (ph == PhaseMode::kOnePhase ? "/1P" : "/2P")
            << (kind == MaskKind::kComplement ? "/comp" : "");
        ++products;
      }
    }
  }
  const auto st = backend->stats();
  EXPECT_EQ(st.dist2d_products, products);   // every one took the 2D path
  EXPECT_EQ(st.dist2d_panels, 4 * products); // on the forced 2x2 grid
  EXPECT_EQ(st.completed, products);         // parents only, no panel leak
}

// The automatic decision: with the backend threshold dropped to 1 flop, a
// plain kAuto submit splits across >= 2 shards and still matches; with the
// default (64M flop) threshold, the same small product stays single-shard.
TEST(Client2D, AutoThresholdSplitsOversizedOnly) {
  const IT n = 100;
  auto b = std::make_shared<const Mat>(erdos_renyi<IT, VT>(n, n, 5, 41));
  auto m = std::make_shared<const Mat>(erdos_renyi<IT, VT>(n, n, 7, 42));
  auto a = std::make_shared<const Mat>(erdos_renyi<IT, VT>(n, n, 5, 43));
  const Mat want = masked_spgemm<SR>(*a, *b, *m);

  {
    Fleet fleet(2);
    ShardedBackendConfig cfg;
    cfg.dist_flop_threshold = 1;  // everything is "oversized"
    auto backend = std::make_shared<Sharded>(fleet.endpoints, cfg);
    Client client(backend);
    auto session = client.open_session();
    auto h = session.register_structure(StructureSpec<IT, VT>(b).mask(m));
    auto res = session.submit(a, h).get();
    ASSERT_TRUE(res.ok()) << res.message;
    EXPECT_TRUE(res.matrix == want);
    const auto st = backend->stats();
    EXPECT_EQ(st.dist2d_products, 1u);
    EXPECT_GE(st.dist2d_panels, 2u);
  }
  {
    Fleet fleet(2);
    auto backend = std::make_shared<Sharded>(fleet.endpoints);
    Client client(backend);
    auto session = client.open_session();
    auto h = session.register_structure(StructureSpec<IT, VT>(b).mask(m));
    auto res = session.submit(a, h).get();
    ASSERT_TRUE(res.ok()) << res.message;
    EXPECT_TRUE(res.matrix == want);
    EXPECT_EQ(backend->stats().dist2d_products, 0u);
  }
}

// Degenerate grids (1xN, Nx1) and panels over an empty column region: B
// occupies only the first 24 of 64 columns, so a 4-column-panel plan leaves
// trailing panels with zero entries — their panel products are empty and the
// merge still reassembles exactly.
TEST(Client2D, GridShapesAndEmptyPanels) {
  Fleet fleet(3);
  auto backend = std::make_shared<Sharded>(fleet.endpoints);
  Client client(backend);
  auto session = client.open_session();

  const auto bfull = erdos_renyi<IT, VT>(96, 64, 5, 7);
  auto b = std::make_shared<const Mat>(service::slice_cols(bfull, 0, 24));
  auto m = std::make_shared<const Mat>(erdos_renyi<IT, VT>(96, 64, 6, 8));
  auto a = std::make_shared<const Mat>(erdos_renyi<IT, VT>(96, 96, 5, 9));
  const Mat want = masked_spgemm<SR>(*a, *b, *m);
  auto h = session.register_structure(
      StructureSpec<IT, VT>(b).mask(m).replicate(2));

  struct Grid {
    int rows, cols;
  };
  for (const auto g : {Grid{1, 3}, Grid{3, 1}, Grid{2, 4}}) {
    auto res = session.submit(a, h, {.masked = force2d(g.rows, g.cols)}).get();
    ASSERT_TRUE(res.ok()) << g.rows << "x" << g.cols << ": " << res.message;
    EXPECT_TRUE(res.matrix == want) << g.rows << "x" << g.cols;
  }
  EXPECT_EQ(backend->stats().dist2d_products, 3u);
}

// Self-masked (k-truss style) structures split too: the panel mask aliases
// the panel itself, so one registration per panel serves both roles.
TEST(Client2D, SelfMaskAliasedStructureSplits) {
  Fleet fleet(2);
  auto backend = std::make_shared<Sharded>(fleet.endpoints);
  Client client(backend);
  auto session = client.open_session();

  auto b = std::make_shared<const Mat>(erdos_renyi<IT, VT>(110, 110, 6, 55));
  auto h = session.register_structure(
      StructureSpec<IT, VT>(b).self_mask().replicate(2));
  auto res = session.submit(b, h, {.masked = force2d(2, 2)}).get();
  ASSERT_TRUE(res.ok()) << res.message;
  EXPECT_TRUE(res.matrix == masked_spgemm<SR>(*b, *b, *b));
  EXPECT_EQ(backend->stats().dist2d_products, 1u);
}

// Streaming updates fan out to every panel shard: after Session::update the
// new-version 2D product matches single-shard on the patched B (including a
// column panel the delta never touches — its empty delta still advanced the
// version), and submits against the superseded handle resolve to a typed
// kStaleStructure, never a stale answer.
TEST(Client2D, StreamingUpdateKeepsPanelsCoherent) {
  Fleet fleet(3);
  auto backend = std::make_shared<Sharded>(fleet.endpoints);
  Client client(backend);
  auto session = client.open_session();

  const IT n = 96;
  auto b = std::make_shared<const Mat>(erdos_renyi<IT, VT>(n, n, 5, 61));
  auto m = std::make_shared<const Mat>(erdos_renyi<IT, VT>(n, n, 7, 62));
  auto a = std::make_shared<const Mat>(erdos_renyi<IT, VT>(n, n, 5, 63));
  auto h = session.register_structure(
      StructureSpec<IT, VT>(b).mask(m).replicate(2));

  // Warm the 2D plan at version 1.
  auto res0 = session.submit(a, h, {.masked = force2d(2, 3)}).get();
  ASSERT_TRUE(res0.ok()) << res0.message;
  EXPECT_TRUE(res0.matrix == masked_spgemm<SR>(*a, *b, *m));

  // Edits confined to low columns: with 3 column panels at least the last
  // panel sees an empty delta slice and must still move to version 2.
  EdgeDelta<IT, VT> delta;
  delta.insert(3, 1, 2.5);
  delta.insert(40, 2, -1.0);
  delta.insert(77, 0, 4.0);
  delta.erase(5, (*b).row(5).empty() ? 1 : (*b).row(5).cols[0]);
  auto h2 = session.update(h, delta);

  auto stale = session.submit(a, h, {.masked = force2d(2, 3)}).get();
  EXPECT_EQ(stale.status, RequestStatus::kStaleStructure);

  const Mat want = masked_spgemm<SR>(*a, *h2.b(), *m);
  auto res1 = session.submit(a, h2, {.masked = force2d(2, 3)}).get();
  ASSERT_TRUE(res1.ok()) << res1.message;
  EXPECT_TRUE(res1.matrix == want);

  // Self-masked structures: the panel mask follows the panel through updates.
  auto sb = std::make_shared<const Mat>(erdos_renyi<IT, VT>(80, 80, 5, 71));
  auto sh = session.register_structure(
      StructureSpec<IT, VT>(sb).self_mask().replicate(2));
  EdgeDelta<IT, VT> sd;
  sd.insert(10, 11, 1.0);
  sd.insert(20, 60, 1.0);
  auto sh2 = session.update(sh, sd);
  auto sres = session.submit(sh2.b(), sh2, {.masked = force2d(2, 2)}).get();
  ASSERT_TRUE(sres.ok()) << sres.message;
  EXPECT_TRUE(sres.matrix ==
              masked_spgemm<SR>(*sh2.b(), *sh2.b(), *sh2.b()));
}

// A replica dies mid-scatter: panel tasks in flight on the dead shard are
// re-dispatched to the surviving replica — every product future resolves
// with the exact result, none lost, none duplicated.
TEST(Client2D, ReplicaFailoverMidScatterLosesNothing) {
  // Flaky "shard": swallows a few submit frames per connection, then slams
  // the connection without answering.
  auto flaky = std::make_shared<LoopbackListener>();
  const int kSwallow = 3;
  std::thread flaky_server([flaky] {
    while (auto stream = flaky->accept()) {
      service::FrameHeader header;
      std::vector<std::uint8_t> payload;
      int submits = 0;
      try {
        while (submits < kSwallow && recv_frame(*stream, header, payload)) {
          if (header.type == service::MessageType::kSubmitRequest) ++submits;
        }
      } catch (const service::TransportError&) {
      } catch (const service::WireError&) {
      }
      stream->shutdown();
    }
  });

  Fleet real(1);
  std::vector<ShardEndpoint> endpoints{
      {"flaky", [flaky] { return flaky->connect(); }}, real.endpoints[0]};
  {
    auto backend = std::make_shared<Sharded>(endpoints);
    Client client(backend);
    auto session = client.open_session({.max_in_flight = 8});

    const IT n = 90;
    auto b = std::make_shared<const Mat>(erdos_renyi<IT, VT>(n, n, 5, 81));
    auto m = std::make_shared<const Mat>(erdos_renyi<IT, VT>(n, n, 7, 82));
    auto h = session.register_structure(
        StructureSpec<IT, VT>(b).mask(m).replicate(2));

    const int kProducts = 6;
    std::vector<std::future<Client::Result>> futures;
    std::vector<Mat> want;
    for (int r = 0; r < kProducts; ++r) {
      auto a = std::make_shared<const Mat>(erdos_renyi<IT, VT>(n, n, 5,
                                                               90 + r));
      want.push_back(masked_spgemm<SR>(*a, *b, *m));
      futures.push_back(session.submit(a, h, {.masked = force2d(2, 2)}));
    }
    for (int r = 0; r < kProducts; ++r) {
      auto res = futures[static_cast<std::size_t>(r)].get();
      ASSERT_TRUE(res.ok()) << res.message;  // zero panel tasks lost
      EXPECT_TRUE(res.matrix == want[static_cast<std::size_t>(r)]);
    }
    const auto st = backend->stats();
    EXPECT_EQ(st.completed, static_cast<std::uint64_t>(kProducts));  // no dup
    EXPECT_EQ(st.dist2d_products, static_cast<std::uint64_t>(kProducts));
  }
  flaky->close();
  flaky_server.join();
}

// The cost-model feedback loop is visible: after 2D traffic, shards that
// served panels carry a non-zero EWMA and the dist2d counters add up.
TEST(Client2D, StatsExposeEwmaAndPanelCounters) {
  Fleet fleet(2);
  auto backend = std::make_shared<Sharded>(fleet.endpoints);
  Client client(backend);
  auto session = client.open_session();

  auto b = std::make_shared<const Mat>(erdos_renyi<IT, VT>(100, 100, 5, 31));
  auto h = session.register_structure(
      StructureSpec<IT, VT>(b).self_mask().replicate(2));
  for (int r = 0; r < 3; ++r) {
    auto res = session.submit(b, h, {.masked = force2d(2, 2)}).get();
    ASSERT_TRUE(res.ok()) << res.message;
  }
  const auto st = backend->stats();
  ASSERT_EQ(st.ewma_nanos.size(), 2u);
  EXPECT_GT(st.ewma_nanos[0] + st.ewma_nanos[1], 0.0);
  EXPECT_EQ(st.dist2d_products, 3u);
  EXPECT_EQ(st.dist2d_panels, 12u);
}
