#include "vector/sparse_vector.hpp"

#include <gtest/gtest.h>

namespace msx {
namespace {

using IT = int32_t;
using VT = double;
using SV = SparseVector<IT, VT>;

TEST(SparseVec, EmptyAndSize) {
  SV v(10);
  EXPECT_EQ(v.size(), 10);
  EXPECT_EQ(v.nnz(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.validate());
}

TEST(SparseVec, FromEntriesSortsAndSums) {
  auto v = SV::from_entries(8, {{5, 1.0}, {2, 2.0}, {5, 3.0}});
  EXPECT_EQ(v.nnz(), 2u);
  EXPECT_EQ(v.indices()[0], 2);
  EXPECT_EQ(v.indices()[1], 5);
  EXPECT_EQ(v.values()[1], 4.0);
  EXPECT_TRUE(v.validate());
}

TEST(SparseVec, FromEntriesRejectsOutOfRange) {
  EXPECT_THROW(SV::from_entries(4, {{4, 1.0}}), std::invalid_argument);
  EXPECT_THROW(SV::from_entries(4, {{-1, 1.0}}), std::invalid_argument);
}

TEST(SparseVec, DenseRoundTrip) {
  std::vector<VT> dense{0, 1.5, 0, 0, -2, 0};
  auto v = SV::from_dense(dense);
  EXPECT_EQ(v.nnz(), 2u);
  EXPECT_EQ(v.to_dense(), dense);
}

TEST(SparseVec, PushBackMaintainsOrder) {
  SV v(10);
  v.push_back(1, 1.0);
  v.push_back(7, 2.0);
  EXPECT_TRUE(v.validate());
  EXPECT_EQ(v.nnz(), 2u);
}

TEST(SparseVec, ValidateCatchesDisorder) {
  SV v(10, {5, 2}, {1.0, 2.0});
  EXPECT_FALSE(v.validate());
  SV w(3, {7}, {1.0});
  EXPECT_FALSE(w.validate());
}

TEST(SparseVec, EwiseAddMergesAndSums) {
  auto a = SV::from_entries(6, {{0, 1.0}, {3, 2.0}});
  auto b = SV::from_entries(6, {{3, 5.0}, {5, 1.0}});
  auto c = ewise_add(a, b);
  EXPECT_EQ(c.nnz(), 3u);
  EXPECT_EQ(c.indices()[0], 0);
  EXPECT_EQ(c.values()[1], 7.0);
  EXPECT_EQ(c.indices()[2], 5);
}

TEST(SparseVec, EwiseAddSizeMismatchThrows) {
  SV a(3), b(4);
  EXPECT_THROW(ewise_add(a, b), std::invalid_argument);
}

TEST(SparseVec, EqualityIsStructuralAndValue) {
  auto a = SV::from_entries(4, {{1, 2.0}});
  auto b = SV::from_entries(4, {{1, 2.0}});
  auto c = SV::from_entries(4, {{1, 3.0}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace msx
