// Engine-level bit-identity of the adaptive per-block engine: for every
// eligible algorithm × phase × mask kind, the CSR output must be EXACTLY
// equal (operator==, no tolerance) across adaptive off / auto / every
// forced mode — the contract that lets the ModePlanner choose on cost
// alone. Plus eligibility edges (ineligible algorithms ignore the knob),
// aliasing, and the option-string/env surface.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "adaptive/planner.hpp"
#include "core/masked_spgemm.hpp"
#include "core/plan.hpp"
#include "core/reference.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"

#include "../core/test_helpers.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;
using SR = PlusTimes<VT>;

std::vector<AdaptiveMode> all_adaptive_modes() {
  return {AdaptiveMode::kOff, AdaptiveMode::kAuto, AdaptiveMode::kForceSparse,
          AdaptiveMode::kForceBitmap, AdaptiveMode::kForceDense};
}

std::vector<MaskedAlgo> eligible_algos() {
  return {MaskedAlgo::kMSA, MaskedAlgo::kHash, MaskedAlgo::kMSABitmap};
}

// A structure whose density shifts across row regions: the first half of
// the rows is dense (high degree), the second half sparse — so per-block
// mode decisions genuinely differ and every mode runs somewhere.
struct MixedWorkload {
  CSRMatrix<IT, VT> a;
  CSRMatrix<IT, VT> b;
  CSRMatrix<IT, VT> m;
};

MixedWorkload mixed_workload(IT dim, std::uint64_t seed) {
  auto dense_a = erdos_renyi<IT, VT>(dim / 2, dim, dim / 4, seed + 1);
  auto sparse_a = erdos_renyi<IT, VT>(dim - dim / 2, dim, 3, seed + 2);
  // Stack: rows [0, dim/2) dense, rows [dim/2, dim) sparse.
  std::vector<IT> rowptr{0};
  std::vector<IT> colidx;
  std::vector<VT> values;
  for (const auto* part : {&dense_a, &sparse_a}) {
    for (IT i = 0; i < part->nrows(); ++i) {
      const auto r = part->row(i);
      colidx.insert(colidx.end(), r.cols.begin(), r.cols.end());
      values.insert(values.end(), r.vals.begin(), r.vals.end());
      rowptr.push_back(static_cast<IT>(colidx.size()));
    }
  }
  MixedWorkload w;
  w.a = CSRMatrix<IT, VT>(dim, dim, std::move(rowptr), std::move(colidx),
                          std::move(values));
  w.b = erdos_renyi<IT, VT>(dim, dim, dim / 8, seed + 3);
  w.m = erdos_renyi<IT, VT>(dim, dim, dim / 6, seed + 4);
  return w;
}

TEST(AdaptiveModes, BitIdenticalAcrossModesAllCombos) {
  const auto w = mixed_workload(256, 17);
  for (auto algo : eligible_algos()) {
    for (auto kind : {MaskKind::kMask, MaskKind::kComplement}) {
      for (auto phase : msx::testing::all_phases()) {
        MaskedOptions o;
        o.algo = algo;
        o.kind = kind;
        o.phases = phase;
        o.adaptive = AdaptiveMode::kOff;
        const auto baseline = masked_spgemm<SR>(w.a, w.b, w.m, o);
        const auto want = reference_masked_spgemm<SR>(w.a, w.b, w.m, kind);
        EXPECT_TRUE(msx::testing::matrices_near(baseline, want))
            << to_string(algo) << " baseline vs reference";
        for (auto mode : all_adaptive_modes()) {
          o.adaptive = mode;
          const auto got = masked_spgemm<SR>(w.a, w.b, w.m, o);
          EXPECT_EQ(baseline, got)
              << to_string(algo) << " kind=" << static_cast<int>(kind)
              << " phase=" << static_cast<int>(phase)
              << " adaptive=" << to_string(mode);
        }
      }
    }
  }
}

TEST(AdaptiveModes, PlanExecutesBitIdenticalAndReModes) {
  const auto w = mixed_workload(256, 29);
  MaskedOptions off;
  off.algo = MaskedAlgo::kHash;
  off.schedule = Schedule::kFlopBalanced;  // always partition -> plan modes
  off.adaptive = AdaptiveMode::kOff;
  auto plan_off = masked_plan<SR>(w.a, w.b, w.m, off);
  const auto baseline = plan_off.execute();
  EXPECT_FALSE(plan_off.adaptive_engine());

  for (auto mode : all_adaptive_modes()) {
    if (mode == AdaptiveMode::kOff) continue;
    MaskedOptions o = off;
    o.adaptive = mode;
    auto plan = masked_plan<SR>(w.a, w.b, w.m, o);
    EXPECT_TRUE(plan.adaptive_engine()) << to_string(mode);
    EXPECT_EQ(plan.algo(), MaskedAlgo::kHash);  // identity unchanged
    // Repeated executes stay bit-identical even as feedback re-modes blocks.
    for (int rep = 0; rep < 3; ++rep) {
      EXPECT_EQ(baseline, plan.execute())
          << to_string(mode) << " rep " << rep;
    }
  }
}

TEST(AdaptiveModes, ForcedModesPinTheHistogram) {
  const auto w = mixed_workload(256, 31);
  struct Case {
    AdaptiveMode opt;
    adaptive::BlockMode pinned;
  };
  for (const auto& c :
       {Case{AdaptiveMode::kForceSparse, adaptive::BlockMode::kSparse},
        Case{AdaptiveMode::kForceBitmap, adaptive::BlockMode::kBitmap},
        Case{AdaptiveMode::kForceDense, adaptive::BlockMode::kDense}}) {
    MaskedOptions o;
    o.algo = MaskedAlgo::kHash;
    o.schedule = Schedule::kFlopBalanced;
    o.adaptive = c.opt;
    auto plan = masked_plan<SR>(w.a, w.b, w.m, o);
    plan.execute();
    ASSERT_TRUE(plan.partition_cached());
    const auto h = plan.adaptive_mode_histogram();
    int total = 0;
    for (int m = 0; m < adaptive::kBlockModeCount; ++m) total += h[m];
    EXPECT_EQ(h[static_cast<int>(c.pinned)], total)
        << "forced " << to_string(c.pinned) << " must pin every block";
  }
}

TEST(AdaptiveModes, IneligibleAlgosIgnoreTheKnob) {
  auto a = rmat<IT, VT>(7, 40);
  auto b = rmat<IT, VT>(7, 41);
  auto m = rmat<IT, VT>(7, 42);
  for (auto algo : {MaskedAlgo::kHeap, MaskedAlgo::kMCA, MaskedAlgo::kInner,
                    MaskedAlgo::kHybrid, MaskedAlgo::kHeapDot}) {
    MaskedOptions o;
    o.algo = algo;
    o.adaptive = AdaptiveMode::kOff;
    const auto baseline = masked_spgemm<SR>(a, b, m, o);
    o.adaptive = AdaptiveMode::kAuto;
    EXPECT_EQ(baseline, masked_spgemm<SR>(a, b, m, o)) << to_string(algo);
    // The plan path must not claim the adaptive engine either.
    auto plan = masked_plan<SR>(a, b, m, o);
    EXPECT_FALSE(plan.adaptive_engine()) << to_string(algo);
  }
}

TEST(AdaptiveModes, AliasedOperandsBitIdentical) {
  // k-truss shape: A = B = M, all the same object.
  auto a = rmat<IT, VT>(8, 55);
  MaskedOptions o;
  o.algo = MaskedAlgo::kHash;
  o.adaptive = AdaptiveMode::kOff;
  const auto baseline = masked_spgemm<SR>(a, a, a, o);
  for (auto mode : all_adaptive_modes()) {
    o.adaptive = mode;
    EXPECT_EQ(baseline, masked_spgemm<SR>(a, a, a, o)) << to_string(mode);
    auto plan = masked_plan<SR>(a, a, a, o);
    EXPECT_EQ(baseline, plan.execute()) << to_string(mode);
    EXPECT_EQ(baseline, plan.execute()) << to_string(mode) << " rerun";
  }
}

TEST(AdaptiveModes, OptionStringsRoundTrip) {
  EXPECT_EQ(adaptive_mode_from_string("off"), AdaptiveMode::kOff);
  EXPECT_EQ(adaptive_mode_from_string("auto"), AdaptiveMode::kAuto);
  EXPECT_EQ(adaptive_mode_from_string("sparse"), AdaptiveMode::kForceSparse);
  EXPECT_EQ(adaptive_mode_from_string("force-bitmap"),
            AdaptiveMode::kForceBitmap);
  EXPECT_EQ(adaptive_mode_from_string("DENSE"), AdaptiveMode::kForceDense);
  EXPECT_THROW(adaptive_mode_from_string("banana"), std::invalid_argument);
  for (auto mode : all_adaptive_modes()) {
    EXPECT_EQ(adaptive_mode_from_string(to_string(mode)), mode);
  }
}

TEST(AdaptiveModes, EnvKnobParsesAndDefaults) {
  ::unsetenv("MSX_ADAPTIVE");
  EXPECT_EQ(adaptive_mode_from_env(), AdaptiveMode::kOff);
  EXPECT_EQ(adaptive_mode_from_env(AdaptiveMode::kAuto), AdaptiveMode::kAuto);
  ::setenv("MSX_ADAPTIVE", "dense", 1);
  EXPECT_EQ(adaptive_mode_from_env(), AdaptiveMode::kForceDense);
  ::setenv("MSX_ADAPTIVE", "not-a-mode", 1);
  EXPECT_EQ(adaptive_mode_from_env(AdaptiveMode::kAuto), AdaptiveMode::kAuto);
  ::unsetenv("MSX_ADAPTIVE");
}

TEST(AdaptiveModes, EligibilityRule) {
  EXPECT_FALSE(
      adaptive::engine_eligible(MaskedAlgo::kHash, AdaptiveMode::kOff));
  EXPECT_TRUE(
      adaptive::engine_eligible(MaskedAlgo::kHash, AdaptiveMode::kAuto));
  EXPECT_TRUE(
      adaptive::engine_eligible(MaskedAlgo::kMSA, AdaptiveMode::kForceDense));
  EXPECT_TRUE(adaptive::engine_eligible(MaskedAlgo::kMSABitmap,
                                        AdaptiveMode::kAuto));
  // Heap merges in column order — different FP addition order — so it must
  // never be swapped for the offer-order engine.
  EXPECT_FALSE(
      adaptive::engine_eligible(MaskedAlgo::kHeap, AdaptiveMode::kAuto));
  EXPECT_FALSE(
      adaptive::engine_eligible(MaskedAlgo::kInner, AdaptiveMode::kAuto));
}

}  // namespace
}  // namespace msx
