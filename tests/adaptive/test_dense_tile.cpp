// Unit tests for the dense row-tile accumulator (accum/dense_tile.hpp) —
// the "dense" mode of the adaptive engine. The bit-identity contract (first
// write, then add, in offer order; mask-order / ascending gather) is what
// the engine-level suites lean on, so it is pinned here at the accumulator
// level first.
#include "accum/dense_tile.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

constexpr auto kAdd = [](VT a, VT b) { return a + b; };

TEST(DenseTileMaskedTest, BasicInsertGather) {
  DenseTileMasked<IT, VT> acc;
  acc.init(600);
  const std::vector<IT> mask{3, 10, 500};
  acc.prepare(mask);
  acc.insert(10, [] { return 1.0; }, kAdd);
  acc.insert(10, [] { return 2.0; }, kAdd);
  acc.insert(500, [] { return 5.0; }, kAdd);
  acc.insert(7, [] { return 100.0; }, kAdd);  // not in mask: dropped at gather

  std::vector<IT> cols(3);
  std::vector<VT> vals(3);
  const IT n = acc.gather_and_reset(mask, cols.data(), vals.data());
  ASSERT_EQ(n, 2);
  EXPECT_EQ(cols[0], 10);
  EXPECT_EQ(vals[0], 3.0);
  EXPECT_EQ(cols[1], 500);
  EXPECT_EQ(vals[1], 5.0);
}

TEST(DenseTileMaskedTest, GatherClearsEverything) {
  DenseTileMasked<IT, VT> acc;
  acc.init(128);
  const std::vector<IT> m1{1, 2};
  acc.prepare(m1);
  acc.insert(1, [] { return 5.0; }, kAdd);
  acc.insert(100, [] { return 9.0; }, kAdd);  // off-mask residue
  std::vector<IT> cols(2);
  std::vector<VT> vals(2);
  ASSERT_EQ(acc.gather_and_reset(m1, cols.data(), vals.data()), 1);

  // Next row: the old off-mask bit at 100 must be gone even though no mask
  // walk could reach it.
  const std::vector<IT> m2{100};
  acc.prepare(m2);
  acc.insert(100, [] { return 7.0; }, kAdd);
  const IT n = acc.gather_and_reset(m2, cols.data(), vals.data());
  ASSERT_EQ(n, 1);
  EXPECT_EQ(vals[0], 7.0);  // fresh first-write, not 9.0 + 7.0
}

TEST(DenseTileMaskedTest, FirstWriteKeepsNegativeZero) {
  // Zero-init + unconditional add would turn a first value of -0.0 into
  // +0.0 — the classic way dense accumulators break bit-identity.
  DenseTileMasked<IT, VT> acc;
  acc.init(64);
  const std::vector<IT> mask{5};
  acc.prepare(mask);
  acc.insert(5, [] { return -0.0; }, kAdd);
  std::vector<IT> cols(1);
  std::vector<VT> vals(1);
  ASSERT_EQ(acc.gather_and_reset(mask, cols.data(), vals.data()), 1);
  EXPECT_TRUE(std::signbit(vals[0]));
}

TEST(DenseTileMaskedTest, SymbolicCountsAllowedFirstSetsOnly) {
  DenseTileMasked<IT, VT> acc;
  acc.init(64);
  const std::vector<IT> mask{2, 8};
  acc.prepare(mask);
  IT cnt = 0;
  cnt += acc.insert_symbolic(2);   // allowed, first set -> 1
  cnt += acc.insert_symbolic(2);   // repeat -> 0
  cnt += acc.insert_symbolic(5);   // not allowed -> 0
  cnt += acc.insert_symbolic(8);   // allowed -> 1
  EXPECT_EQ(cnt, 2);
  acc.reset(mask);
  // After reset the same row counts again from scratch.
  acc.prepare(mask);
  EXPECT_EQ(acc.insert_symbolic(2), 1);
  acc.reset(mask);
}

TEST(DenseTileComplementTest, GatherAscendingSkipsBanned) {
  DenseTileComplement<IT, VT> acc;
  acc.init(200);
  const std::vector<IT> mask{64, 130};  // banned columns
  acc.prepare(mask);
  acc.insert(130, [] { return 1.0; }, kAdd);  // banned: dropped
  acc.insert(190, [] { return 4.0; }, kAdd);
  acc.insert(64, [] { return 2.0; }, kAdd);   // banned: dropped
  acc.insert(3, [] { return 9.0; }, kAdd);
  acc.insert(190, [] { return 1.0; }, kAdd);

  std::vector<IT> cols(4);
  std::vector<VT> vals(4);
  const IT n = acc.gather_and_reset(mask, cols.data(), vals.data());
  ASSERT_EQ(n, 2);
  EXPECT_EQ(cols[0], 3);   // ascending column order, no sort needed
  EXPECT_EQ(vals[0], 9.0);
  EXPECT_EQ(cols[1], 190);
  EXPECT_EQ(vals[1], 5.0);
}

TEST(DenseTileComplementTest, SymbolicCountsNonBanned) {
  DenseTileComplement<IT, VT> acc;
  acc.init(64);
  const std::vector<IT> mask{7};
  acc.prepare(mask);
  IT cnt = 0;
  cnt += acc.insert_symbolic(7);   // banned -> 0
  cnt += acc.insert_symbolic(9);   // free -> 1
  cnt += acc.insert_symbolic(9);   // repeat -> 0
  EXPECT_EQ(cnt, 1);
  acc.reset(mask);
}

TEST(DenseTileComplementTest, BanDropsAfterGather) {
  DenseTileComplement<IT, VT> acc;
  acc.init(64);
  const std::vector<IT> m1{9};
  acc.prepare(m1);
  acc.insert(9, [] { return 1.0; }, kAdd);
  std::vector<IT> cols(2);
  std::vector<VT> vals(2);
  ASSERT_EQ(acc.gather_and_reset(m1, cols.data(), vals.data()), 0);

  // New row with an empty mask: column 9 must no longer be banned.
  const std::vector<IT> m2;
  acc.prepare(m2);
  acc.insert(9, [] { return 3.0; }, kAdd);
  ASSERT_EQ(acc.gather_and_reset(m2, cols.data(), vals.data()), 1);
  EXPECT_EQ(cols[0], 9);
  EXPECT_EQ(vals[0], 3.0);
}

TEST(DenseTileTest, InitGrowsAndClearReleases) {
  DenseTileMasked<IT, VT> acc;
  acc.init(10);
  acc.init(1000);  // grow
  const std::vector<IT> mask{999};
  acc.prepare(mask);
  acc.insert(999, [] { return 1.5; }, kAdd);
  std::vector<IT> cols(1);
  std::vector<VT> vals(1);
  ASSERT_EQ(acc.gather_and_reset(mask, cols.data(), vals.data()), 1);
  acc.clear();
  acc.init(64);  // usable again after clear
  const std::vector<IT> m2{1};
  acc.prepare(m2);
  acc.insert(1, [] { return 2.0; }, kAdd);
  ASSERT_EQ(acc.gather_and_reset(m2, cols.data(), vals.data()), 1);
  EXPECT_EQ(vals[0], 2.0);
}

}  // namespace
}  // namespace msx
