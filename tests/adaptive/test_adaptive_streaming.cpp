// Adaptive engine × streaming deltas: a delta that flips a block's density
// regime must flip the block's planned mode on the next execute (modes are
// cleared by apply_delta and replanned without rebuilding the partition),
// results stay bit-identical throughout, and the FeedbackStore keeps serving
// the structure across deltas (digest deliberately unchanged). Plus the
// delta-path CSC splice (patch_csc_for_delta) against the full rebuild.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "adaptive/feedback.hpp"
#include "adaptive/planner.hpp"
#include "core/delta.hpp"
#include "core/plan.hpp"
#include "gen/erdos_renyi.hpp"
#include "matrix/convert.hpp"

#include "../core/test_helpers.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;
using SR = PlusTimes<VT>;

// Inserts a dense brick of edges into rows [lo, hi) of the delta.
void densify_rows(EdgeDelta<IT, VT>& delta, IT lo, IT hi, IT ncols,
                  IT stride) {
  for (IT r = lo; r < hi; ++r) {
    for (IT c = r % stride; c < ncols; c += stride) {
      delta.insert(r, c, 1.0);
    }
  }
}

TEST(AdaptiveStreaming, DeltaFlipsBlockModeWithoutReplan) {
  // Sized so the static cost model is unambiguous on both sides of the
  // delta: at width 2048 the dense tile's per-row clear (width/128 = 16
  // units) outweighs the sparse product work (~8 flops/row -> bitmap ~29 vs
  // dense ~36 per row), and after the delta densifies B to ~130 nnz/row the
  // flop term dominates (~520 flops/row -> dense ~548 vs bitmap ~1053).
  const IT dim = 2048;
  auto a = erdos_renyi<IT, VT>(dim, dim, 4, 301);
  auto b = erdos_renyi<IT, VT>(dim, dim, 2, 302);  // sparse: dense mode loses
  auto m = erdos_renyi<IT, VT>(dim, dim, 4, 303);

  MaskedOptions o;
  o.algo = MaskedAlgo::kHash;
  o.schedule = Schedule::kFlopBalanced;
  o.adaptive = AdaptiveMode::kAuto;
  auto plan = masked_plan<SR>(a, b, m, o);
  ASSERT_TRUE(plan.adaptive_engine());

  plan.execute();
  ASSERT_TRUE(plan.partition_cached());
  const int blocks_before = plan.partition_blocks();
  const auto hist_before = plan.adaptive_mode_histogram();
  // Sparse B: no block should price dense cheapest.
  EXPECT_EQ(hist_before[static_cast<int>(adaptive::BlockMode::kDense)], 0);

  // Densify the whole B — every A row now multiplies dense B rows, pushing
  // per-block flops/row toward the block width where dense mode wins.
  EdgeDelta<IT, VT> delta;
  densify_rows(delta, 0, dim, dim, 16);
  const auto st = plan.apply_delta(delta);
  EXPECT_TRUE(st.partition_kept);

  const auto c_after = plan.execute();
  EXPECT_EQ(plan.partition_blocks(), blocks_before)  // no partition rebuild
      << "apply_delta must keep block boundaries";
  const auto hist_after = plan.adaptive_mode_histogram();
  EXPECT_GT(hist_after[static_cast<int>(adaptive::BlockMode::kDense)], 0)
      << "densifying delta must flip blocks to dense mode";

  // Bit-identity against a fresh non-adaptive product on the patched B.
  const auto b2 = apply_edge_delta(b, delta);
  MaskedOptions off = o;
  off.adaptive = AdaptiveMode::kOff;
  auto fresh = masked_plan<SR>(a, b2, m, off);
  EXPECT_EQ(fresh.execute(), c_after);
}

TEST(AdaptiveStreaming, FeedbackSurvivesDeltaAndSecondExecuteHits) {
  const IT dim = 192;
  auto a = erdos_renyi<IT, VT>(dim, dim, 16, 311);
  auto b = erdos_renyi<IT, VT>(dim, dim, 8, 312);
  auto m = erdos_renyi<IT, VT>(dim, dim, 24, 313);

  MaskedOptions o;
  o.algo = MaskedAlgo::kMSA;
  o.schedule = Schedule::kFlopBalanced;
  o.adaptive = AdaptiveMode::kAuto;
  auto plan = masked_plan<SR>(a, b, m, o);

  auto& store = adaptive::FeedbackStore::global();
  const auto before = store.stats();
  const auto c1 = plan.execute();  // plans modes + records timings
  const auto mid = store.stats();
  EXPECT_GT(mid.records, before.records) << "first execute must record";

  // Second execute: same digest, prior observations -> feedback hit; the
  // re-mode pass runs without replanning (no new plans beyond replans).
  const auto c2 = plan.execute();
  const auto after = store.stats();
  EXPECT_GT(after.feedback_hits, mid.feedback_hits)
      << "second execute must consult the store";
  EXPECT_EQ(c1, c2);

  // A small delta keeps the digest, so the store still serves the plan.
  EdgeDelta<IT, VT> delta;
  delta.insert(0, 1, 2.0);
  delta.erase(1, 0);
  plan.apply_delta(delta);
  plan.execute();          // replans modes (cleared by the delta)
  const auto c3 = plan.execute();  // ...and hits feedback again
  const auto final_st = store.stats();
  EXPECT_GT(final_st.feedback_hits, after.feedback_hits)
      << "digest must survive apply_delta";

  const auto b2 = apply_edge_delta(b, delta);
  EXPECT_EQ(c3, (masked_spgemm<SR>(a, b2, m, o)));
}

TEST(AdaptiveStreaming, RepeatedDeltaLoopStaysBitIdentical) {
  const IT dim = 128;
  auto a = erdos_renyi<IT, VT>(dim, dim, 12, 321);
  auto b = erdos_renyi<IT, VT>(dim, dim, 4, 322);
  auto m = erdos_renyi<IT, VT>(dim, dim, 16, 323);

  MaskedOptions o;
  o.algo = MaskedAlgo::kHash;
  o.schedule = Schedule::kFlopBalanced;
  o.adaptive = AdaptiveMode::kAuto;
  o.phases = PhaseMode::kTwoPhase;  // exercise the symbolic splice too
  auto plan = masked_plan<SR>(a, b, m, o);

  auto cur_b = b;
  for (int step = 0; step < 4; ++step) {
    EdgeDelta<IT, VT> delta;
    // Alternate densifying and thinning one quarter of the rows so block
    // modes keep moving in both directions.
    const IT lo = static_cast<IT>((step % 4) * (dim / 4));
    if (step % 2 == 0) {
      densify_rows(delta, lo, static_cast<IT>(lo + dim / 4), dim, 3);
    } else {
      for (IT r = lo; r < lo + dim / 4; ++r) {
        const auto row = cur_b.row(r);
        for (IT p = 0; p < row.size(); p += 2) delta.erase(r, row.cols[p]);
      }
    }
    plan.apply_delta(delta);
    cur_b = apply_edge_delta(cur_b, delta);
    const auto got = plan.execute();
    MaskedOptions off = o;
    off.adaptive = AdaptiveMode::kOff;
    EXPECT_EQ(got, (masked_spgemm<SR>(a, cur_b, m, off)))
        << "delta step " << step;
  }
}

TEST(DeltaCscPatch, MatchesFullRebuild) {
  const IT dim = 64;
  auto b = erdos_renyi<IT, VT>(dim, dim, 5, 331);
  auto csc = csr_to_csc(b);

  EdgeDelta<IT, VT> delta;
  delta.insert(3, 7, 2.5);    // new edge
  delta.insert(3, 7, 3.5);    // duplicate insert: last wins
  delta.erase(10, 11);        // maybe-absent edge: no-op if absent
  const auto b0 = b.row(0);
  if (b0.size() > 0) {
    delta.erase(0, b0.cols[0]);            // delete an existing edge
    delta.insert(0, b0.cols[0], 9.0);      // ...and re-insert (replace)
  }
  densify_rows(delta, 20, 24, dim, 4);

  const std::size_t patched = patch_csc_for_delta(csc, delta);
  EXPECT_GT(patched, 0u);

  const auto b_new = apply_edge_delta(b, delta);
  const auto want = csr_to_csc(b_new);
  EXPECT_EQ(csc, want);
}

TEST(DeltaCscPatch, EmptyDeltaAndValidation) {
  auto b = erdos_renyi<IT, VT>(16, 16, 3, 341);
  auto csc = csr_to_csc(b);
  const auto orig = csc;
  EXPECT_EQ(patch_csc_for_delta(csc, EdgeDelta<IT, VT>{}), 0u);
  EXPECT_EQ(csc, orig);

  EdgeDelta<IT, VT> bad;
  bad.insert(0, 99, 1.0);  // out of range
  EXPECT_THROW(patch_csc_for_delta(csc, bad), std::invalid_argument);
}

TEST(DeltaCscPatch, CursorValueRefreshMatchesPermutation) {
  auto b = erdos_renyi<IT, VT>(32, 32, 4, 351);
  auto csc = csr_to_csc(b);
  // Perturb every CSR value, refresh the mirror via the cursor walk.
  std::vector<VT> vals(b.values().begin(), b.values().end());
  for (auto& v : vals) v *= 3.0;
  std::copy(vals.begin(), vals.end(), b.mutable_values().begin());
  refresh_csc_values(b, csc);
  EXPECT_EQ(csc, csr_to_csc(b));
}

}  // namespace
}  // namespace msx
