// FeedbackStore unit tests: record/remode round trips, the hysteresis
// margin, digest independence, the planner accounting hook, and a
// multi-threaded hammer for the TSan job (the store is the one piece of
// adaptive state shared across concurrent plans).
#include "adaptive/feedback.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "adaptive/planner.hpp"
#include "core/partition.hpp"

namespace msx {
namespace {

using adaptive::BlockMode;
using adaptive::FeedbackStore;
using adaptive::kBlockModeCount;

// A two-block partition with the given per-block modes and uniform
// predicted costs (1000 units for every mode of every block).
RowPartition make_partition(std::vector<std::uint8_t> modes) {
  RowPartition part;
  const auto nb = modes.size();
  for (std::size_t i = 0; i <= nb; ++i) {
    part.block_start.push_back(static_cast<std::int64_t>(i * 10));
  }
  part.block_mode = std::move(modes);
  part.block_mode_cost.assign(nb * kBlockModeCount, 1000.0);
  return part;
}

BlockTimings make_timings(const RowPartition& part,
                          std::vector<std::uint64_t> nanos) {
  BlockTimings t;
  t.nanos = std::move(nanos);
  t.mode = part.block_mode;
  return t;
}

TEST(FeedbackStore, RemodeSwitchesToObservedFasterMode) {
  FeedbackStore store;
  const std::uint64_t digest = 0xABCDull;
  auto part = make_partition({static_cast<std::uint8_t>(BlockMode::kSparse),
                              static_cast<std::uint8_t>(BlockMode::kSparse)});

  // Run 1: sparse mode everywhere, block 0 slow, block 1 fast.
  store.record(digest, part, make_timings(part, {4'000'000, 10'000}));
  // Run 2: dense mode everywhere, block 0 fast, block 1 slow.
  auto dense_part = part;
  dense_part.block_mode.assign(2,
                               static_cast<std::uint8_t>(BlockMode::kDense));
  store.record(digest, dense_part,
               make_timings(dense_part, {10'000, 4'000'000}));

  // Re-moding the sparse-planned partition must flip block 0 to dense
  // (observed 10k vs 4M beats any hysteresis) and keep block 1 sparse.
  int changed = store.remode(digest, part);
  EXPECT_EQ(changed, 1);
  EXPECT_EQ(part.block_mode[0], static_cast<std::uint8_t>(BlockMode::kDense));
  EXPECT_EQ(part.block_mode[1],
            static_cast<std::uint8_t>(BlockMode::kSparse));

  const auto st = store.stats();
  EXPECT_EQ(st.records, 2u);
  EXPECT_EQ(st.feedback_hits, 1u);
  EXPECT_EQ(st.remodes, 1u);
}

TEST(FeedbackStore, HysteresisBlocksMarginalSwitches) {
  FeedbackStore store;
  const std::uint64_t digest = 0x1234ull;
  auto part = make_partition({static_cast<std::uint8_t>(BlockMode::kSparse)});

  store.record(digest, part, make_timings(part, {100'000}));
  auto bitmap_part = part;
  bitmap_part.block_mode[0] = static_cast<std::uint8_t>(BlockMode::kBitmap);
  // 8% faster — inside the 15% hysteresis margin, must NOT switch.
  store.record(digest, bitmap_part, make_timings(bitmap_part, {92'000}));

  EXPECT_EQ(store.remode(digest, part), 0);
  EXPECT_EQ(part.block_mode[0],
            static_cast<std::uint8_t>(BlockMode::kSparse));

  // 40% faster — clears the margin, must switch.
  store.record(digest, bitmap_part, make_timings(bitmap_part, {20'000}));
  EXPECT_EQ(store.remode(digest, part), 1);
  EXPECT_EQ(part.block_mode[0],
            static_cast<std::uint8_t>(BlockMode::kBitmap));
}

TEST(FeedbackStore, DigestsAreIndependent) {
  FeedbackStore store;
  auto part = make_partition({static_cast<std::uint8_t>(BlockMode::kSparse)});
  store.record(0x1ull, part, make_timings(part, {500'000}));
  // Nothing recorded under 0x2: no hit, no change.
  EXPECT_EQ(store.remode(0x2ull, part), 0);
  EXPECT_EQ(store.stats().feedback_hits, 0u);
}

TEST(FeedbackStore, ReshapedPartitionIsIgnored) {
  FeedbackStore store;
  const std::uint64_t digest = 0x77ull;
  auto part = make_partition({static_cast<std::uint8_t>(BlockMode::kSparse),
                              static_cast<std::uint8_t>(BlockMode::kSparse)});
  store.record(digest, part, make_timings(part, {1000, 1000}));
  auto reshaped =
      make_partition({static_cast<std::uint8_t>(BlockMode::kSparse)});
  EXPECT_EQ(store.remode(digest, reshaped), 0);
}

TEST(FeedbackStore, CoefficientScalesUnobservedModes) {
  FeedbackStore store;
  const std::uint64_t digest = 0x99ull;
  // Block predicted: sparse 1000 units, dense 10 units (block_mode_cost set
  // by hand below). Observed: sparse ran at 1000 ns -> coeff 1.0, so dense
  // is predicted at ~10 ns and must win.
  RowPartition part;
  part.block_start = {0, 10};
  part.block_mode = {static_cast<std::uint8_t>(BlockMode::kSparse)};
  part.block_mode_cost = {1000.0, 1000.0, 10.0};
  store.record(digest, part, make_timings(part, {1000}));
  EXPECT_EQ(store.remode(digest, part), 1);
  EXPECT_EQ(part.block_mode[0], static_cast<std::uint8_t>(BlockMode::kDense));
}

TEST(FeedbackStore, NotePlannedTallies) {
  FeedbackStore store;
  auto part = make_partition({static_cast<std::uint8_t>(BlockMode::kSparse),
                              static_cast<std::uint8_t>(BlockMode::kDense),
                              static_cast<std::uint8_t>(BlockMode::kDense)});
  store.note_planned(part);
  const auto st = store.stats();
  EXPECT_EQ(st.plans, 1u);
  EXPECT_EQ(st.mode_blocks[static_cast<int>(BlockMode::kSparse)], 1u);
  EXPECT_EQ(st.mode_blocks[static_cast<int>(BlockMode::kBitmap)], 0u);
  EXPECT_EQ(st.mode_blocks[static_cast<int>(BlockMode::kDense)], 2u);
}

TEST(FeedbackStore, ClearDropsEverything) {
  FeedbackStore store;
  auto part = make_partition({static_cast<std::uint8_t>(BlockMode::kSparse)});
  store.record(0x5ull, part, make_timings(part, {1000}));
  EXPECT_EQ(store.stats().entries, 1u);
  store.clear();
  EXPECT_EQ(store.stats().entries, 0u);
  EXPECT_EQ(store.remode(0x5ull, part), 0);
}

TEST(FeedbackStore, ConcurrentRecordRemodeIsSafe) {
  FeedbackStore store;
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      auto part =
          make_partition({static_cast<std::uint8_t>(BlockMode::kSparse),
                          static_cast<std::uint8_t>(BlockMode::kBitmap)});
      for (int i = 0; i < kIters; ++i) {
        const auto digest = static_cast<std::uint64_t>(t % 2);  // contended
        store.record(digest, part,
                     make_timings(part, {1000u + static_cast<unsigned>(i),
                                         2000u}));
        store.remode(digest, part);
        store.note_planned(part);
        if (i % 64 == 63) store.stats();
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto st = store.stats();
  EXPECT_EQ(st.records, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(st.plans, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(FeedbackStore, StructureDigestSamplesAndChains) {
  std::vector<std::int32_t> rowptr{0, 2, 4, 6};
  std::vector<std::int32_t> colidx{0, 1, 1, 2, 0, 2};
  const auto h1 = adaptive::structure_digest<std::int32_t>(
      adaptive::kDigestSeed, 3, 3, rowptr, colidx);
  const auto h2 = adaptive::structure_digest<std::int32_t>(
      adaptive::kDigestSeed, 3, 3, rowptr, colidx);
  EXPECT_EQ(h1, h2);  // deterministic
  auto colidx2 = colidx;
  colidx2[1] = 2;
  const auto h3 = adaptive::structure_digest<std::int32_t>(
      adaptive::kDigestSeed, 3, 3, rowptr, colidx2);
  EXPECT_NE(h1, h3);  // sensitive to sampled entries
  // Chaining two operands differs from either alone.
  const auto chained = adaptive::structure_digest<std::int32_t>(
      h1, 3, 3, rowptr, colidx);
  EXPECT_NE(chained, h1);
}

}  // namespace
}  // namespace msx
