#include "gen/structured.hpp"

#include <gtest/gtest.h>

#include "matrix/build.hpp"
#include "matrix/ops.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

TEST(Structured, PathGraph) {
  auto p = path_graph<IT, VT>(5);
  EXPECT_EQ(p.nnz(), 8u);  // 4 undirected edges
  EXPECT_EQ(p.row_nnz(0), 1);
  EXPECT_EQ(p.row_nnz(2), 2);
  EXPECT_TRUE(is_pattern_symmetric(p));
}

TEST(Structured, CycleGraph) {
  auto c = cycle_graph<IT, VT>(6);
  EXPECT_EQ(c.nnz(), 12u);
  for (IT i = 0; i < 6; ++i) EXPECT_EQ(c.row_nnz(i), 2);
  EXPECT_THROW((cycle_graph<IT, VT>(2)), std::invalid_argument);
}

TEST(Structured, CompleteGraph) {
  auto k = complete_graph<IT, VT>(7);
  EXPECT_EQ(k.nnz(), 42u);
  for (IT i = 0; i < 7; ++i) EXPECT_EQ(k.row_nnz(i), 6);
}

TEST(Structured, StarGraph) {
  auto s = star_graph<IT, VT>(10);
  EXPECT_EQ(s.row_nnz(0), 9);
  for (IT i = 1; i < 10; ++i) EXPECT_EQ(s.row_nnz(i), 1);
}

TEST(Structured, CompleteBipartite) {
  auto b = complete_bipartite<IT, VT>(3, 4);
  EXPECT_EQ(b.nrows(), 7);
  EXPECT_EQ(b.nnz(), 24u);
  for (IT i = 0; i < 3; ++i) EXPECT_EQ(b.row_nnz(i), 4);
  for (IT i = 3; i < 7; ++i) EXPECT_EQ(b.row_nnz(i), 3);
}

TEST(Structured, Grid2d) {
  auto g = grid2d<IT, VT>(3, 4);
  EXPECT_EQ(g.nrows(), 12);
  // Edge count: horizontal 3*3 + vertical 2*4 = 17 undirected -> 34 entries.
  EXPECT_EQ(g.nnz(), 34u);
  EXPECT_TRUE(is_pattern_symmetric(g));
  // Corner degree 2, interior degree 4.
  EXPECT_EQ(g.row_nnz(0), 2);
  EXPECT_EQ(g.row_nnz(5), 4);
}

TEST(Structured, Torus2dRegularDegree) {
  auto t = grid2d<IT, VT>(4, 5, /*torus=*/true);
  for (IT i = 0; i < t.nrows(); ++i) EXPECT_EQ(t.row_nnz(i), 4);
  EXPECT_TRUE(is_pattern_symmetric(t));
}

TEST(Structured, KroneckerPowerDims) {
  auto seed = csr_from_dense<IT, VT>({{1, 1}, {0, 1}});
  auto k3 = kronecker_power(seed, 3);
  EXPECT_EQ(k3.nrows(), 8);
  EXPECT_EQ(k3.nnz(), 27u);  // nnz(seed)^3
  EXPECT_TRUE(k3.validate());
  auto k1 = kronecker_power(seed, 1);
  EXPECT_EQ(k1, seed);
}

TEST(Structured, PreferentialAttachment) {
  auto g = preferential_attachment<IT, VT>(200, 4, 17);
  EXPECT_TRUE(is_pattern_symmetric(g));
  EXPECT_TRUE(g.validate());
  // Every late vertex got exactly 4 attachments, so min degree >= 4.
  for (IT i = 0; i < g.nrows(); ++i) EXPECT_GE(g.row_nnz(i), 4);
  // Skew: some early vertex accumulates far more than m.
  IT max_deg = 0;
  for (IT i = 0; i < g.nrows(); ++i) max_deg = std::max(max_deg, g.row_nnz(i));
  EXPECT_GT(max_deg, 12);
  // Deterministic.
  EXPECT_EQ(g, (preferential_attachment<IT, VT>(200, 4, 17)));
}

}  // namespace
}  // namespace msx
