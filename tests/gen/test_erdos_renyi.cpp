#include "gen/erdos_renyi.hpp"

#include <gtest/gtest.h>

#include "common/parallel.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

TEST(ErdosRenyi, ExactRowDegrees) {
  auto a = erdos_renyi<IT, VT>(100, 200, 7, 1);
  EXPECT_TRUE(a.validate());
  for (IT i = 0; i < a.nrows(); ++i) EXPECT_EQ(a.row_nnz(i), 7);
  EXPECT_EQ(a.nnz(), 700u);
}

TEST(ErdosRenyi, DegreeCappedByWidth) {
  auto a = erdos_renyi<IT, VT>(10, 5, 50, 2);
  for (IT i = 0; i < a.nrows(); ++i) EXPECT_EQ(a.row_nnz(i), 5);
}

TEST(ErdosRenyi, NoSelfLoopsOption) {
  ErdosRenyiOptions opts;
  opts.allow_self_loops = false;
  auto a = erdos_renyi<IT, VT>(50, 50, 49, 3, opts);  // every column but i
  for (IT i = 0; i < a.nrows(); ++i) {
    const auto row = a.row(i);
    EXPECT_EQ(row.size(), 49);
    for (IT p = 0; p < row.size(); ++p) EXPECT_NE(row.cols[p], i);
  }
}

TEST(ErdosRenyi, NoSelfLoopsFullWidthMinusOne) {
  // degree request beyond available (ncols-1) must clamp, not loop forever.
  ErdosRenyiOptions opts;
  opts.allow_self_loops = false;
  auto a = erdos_renyi<IT, VT>(8, 8, 100, 4, opts);
  for (IT i = 0; i < 8; ++i) EXPECT_EQ(a.row_nnz(i), 7);
}

TEST(ErdosRenyi, DeterministicAcrossThreadCounts) {
  CSRMatrix<IT, VT> with_many, with_one;
  with_many = erdos_renyi<IT, VT>(300, 300, 10, 42);
  {
    ScopedNumThreads guard(1);
    with_one = erdos_renyi<IT, VT>(300, 300, 10, 42);
  }
  EXPECT_EQ(with_many, with_one);
}

TEST(ErdosRenyi, SeedsProduceDifferentMatrices) {
  auto a = erdos_renyi<IT, VT>(100, 100, 5, 1);
  auto b = erdos_renyi<IT, VT>(100, 100, 5, 2);
  EXPECT_NE(a, b);
}

TEST(ErdosRenyi, ValuesInRequestedRange) {
  ErdosRenyiOptions opts;
  opts.value_min = 2.0;
  opts.value_max = 3.0;
  auto a = erdos_renyi<IT, VT>(50, 50, 5, 9, opts);
  for (VT v : a.values()) {
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(ErdosRenyi, ZeroDegreeAndZeroRows) {
  auto a = erdos_renyi<IT, VT>(10, 10, 0, 1);
  EXPECT_EQ(a.nnz(), 0u);
  auto b = erdos_renyi<IT, VT>(0, 10, 5, 1);
  EXPECT_EQ(b.nrows(), 0);
  EXPECT_EQ(b.nnz(), 0u);
}

TEST(ErdosRenyi, DenseRequestIsFullRow) {
  auto a = erdos_renyi<IT, VT>(20, 16, 16, 6);
  for (IT i = 0; i < 20; ++i) {
    const auto row = a.row(i);
    ASSERT_EQ(row.size(), 16);
    for (IT p = 0; p < 16; ++p) EXPECT_EQ(row.cols[p], p);
  }
}

TEST(ErdosRenyi, ColumnsSpreadAcrossRange) {
  // Statistical sanity: with n=1000, degree 8, some column beyond 900 should
  // appear within the first 100 rows.
  auto a = erdos_renyi<IT, VT>(100, 1000, 8, 13);
  bool high_col_seen = false;
  for (IT c : a.colidx()) {
    if (c >= 900) {
      high_col_seen = true;
      break;
    }
  }
  EXPECT_TRUE(high_col_seen);
}

}  // namespace
}  // namespace msx
