#include "gen/rmat.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "matrix/ops.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

TEST(Rmat, ShapeAndBounds) {
  auto a = rmat<IT, VT>(8, 1);
  EXPECT_EQ(a.nrows(), 256);
  EXPECT_EQ(a.ncols(), 256);
  EXPECT_TRUE(a.validate());
  // Sampled 256*16 edges; dedup + self-loop removal shrinks but not to zero.
  EXPECT_GT(a.nnz(), 256u);
  EXPECT_LE(a.nnz(), 2u * 256u * 16u);
}

TEST(Rmat, Deterministic) {
  auto a = rmat<IT, VT>(7, 99);
  auto b = rmat<IT, VT>(7, 99);
  EXPECT_EQ(a, b);
  auto c = rmat<IT, VT>(7, 100);
  EXPECT_NE(a, c);
}

TEST(Rmat, SymmetrizedByDefault) {
  auto a = rmat<IT, VT>(8, 5);
  EXPECT_TRUE(is_pattern_symmetric(a));
}

TEST(Rmat, NoSelfLoopsByDefault) {
  auto a = rmat<IT, VT>(8, 3);
  for (IT i = 0; i < a.nrows(); ++i) {
    const auto row = a.row(i);
    for (IT p = 0; p < row.size(); ++p) EXPECT_NE(row.cols[p], i);
  }
}

TEST(Rmat, DirectedOption) {
  RmatOptions opts;
  opts.symmetrize = false;
  auto a = rmat<IT, VT>(8, 7, opts);
  EXPECT_TRUE(a.validate());
}

TEST(Rmat, SkewedDegreesWithGraph500Params) {
  // R-MAT with a=0.57 concentrates edges: the max degree should far exceed
  // the mean degree (power-law-ish tail). Disable id scrambling so the
  // hub structure stays at low vertex ids.
  RmatOptions opts;
  opts.scramble_ids = false;
  auto a = rmat<IT, VT>(10, 11, opts);
  const double mean =
      static_cast<double>(a.nnz()) / static_cast<double>(a.nrows());
  IT max_deg = 0;
  for (IT i = 0; i < a.nrows(); ++i) max_deg = std::max(max_deg, a.row_nnz(i));
  EXPECT_GT(static_cast<double>(max_deg), 4.0 * mean);
}

TEST(Rmat, EdgeFactorScalesNnz) {
  RmatOptions small;
  small.edge_factor = 4;
  RmatOptions large;
  large.edge_factor = 16;
  auto a = rmat<IT, VT>(9, 2, small);
  auto b = rmat<IT, VT>(9, 2, large);
  EXPECT_GT(b.nnz(), 2u * a.nnz());
}

TEST(Rmat, ScaleZeroAndRejects) {
  auto a = rmat<IT, VT>(0, 1);  // single vertex, self-loops removed
  EXPECT_EQ(a.nrows(), 1);
  EXPECT_EQ(a.nnz(), 0u);
  EXPECT_THROW((rmat<IT, VT>(31, 1)), std::invalid_argument);
  EXPECT_THROW((rmat<IT, VT>(-1, 1)), std::invalid_argument);
}

}  // namespace
}  // namespace msx
