#include "gen/suite.hpp"

#include <gtest/gtest.h>

#include <set>

#include "matrix/ops.hpp"

namespace msx {
namespace {

TEST(Suite, NonEmptyAndUniqueNames) {
  auto suite = graph_suite(-3);
  EXPECT_GE(suite.size(), 10u);
  std::set<std::string> names;
  for (const auto& w : suite) names.insert(w.name);
  EXPECT_EQ(names.size(), suite.size());
}

TEST(Suite, AllWorkloadsGenerateValidSymmetricGraphs) {
  for (const auto& w : graph_suite(-4)) {
    SCOPED_TRACE(w.name);
    auto g = w.make();
    EXPECT_TRUE(g.validate());
    EXPECT_EQ(g.nrows(), g.ncols());
    EXPECT_GT(g.nnz(), 0u);
    EXPECT_TRUE(is_pattern_symmetric(g));
  }
}

TEST(Suite, ScaleShiftGrowsGraphs) {
  auto small = graph_suite_filtered("rmat-s10", -4);
  auto large = graph_suite_filtered("rmat-s10", -2);
  ASSERT_EQ(small.size(), 1u);
  ASSERT_EQ(large.size(), 1u);
  EXPECT_LT(small[0].make().nnz(), large[0].make().nnz());
}

TEST(Suite, FilterFindsAndMisses) {
  EXPECT_EQ(graph_suite_filtered("grid2d", -4).size(), 1u);
  EXPECT_TRUE(graph_suite_filtered("no-such-workload", -4).empty());
}

TEST(Suite, Deterministic) {
  auto a = graph_suite_filtered("er-d4", -4)[0].make();
  auto b = graph_suite_filtered("er-d4", -4)[0].make();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace msx
