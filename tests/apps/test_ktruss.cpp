#include "apps/ktruss.hpp"

#include <gtest/gtest.h>

#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "gen/structured.hpp"
#include "matrix/build.hpp"
#include "matrix/ops.hpp"
#include "test_helpers_apps.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

TEST(KTruss, CompleteGraphIsItsOwnTruss) {
  // Every edge of K6 sits in 4 triangles: K6 is a 6-truss (support >= k-2
  // for k <= 6), so k=5 keeps everything.
  auto k6 = complete_graph<IT, VT>(6);
  auto r = ktruss(k6, 5);
  EXPECT_EQ(r.remaining_edges, k6.nnz());
  EXPECT_EQ(r.iterations, 1);
}

TEST(KTruss, CompleteGraphVanishesAboveThreshold) {
  auto k5 = complete_graph<IT, VT>(5);
  auto r = ktruss(k5, 6);  // needs support 4; K5 edges have 3
  EXPECT_EQ(r.remaining_edges, 0u);
}

TEST(KTruss, TriangleFreeGraphVanishes) {
  auto g = grid2d<IT, VT>(8, 8);
  auto r = ktruss(g, 3);  // even k=3 needs support 1
  EXPECT_EQ(r.remaining_edges, 0u);
}

TEST(KTruss, PeelsPendantTriangle) {
  // Two triangles sharing no edge, connected by a bridge; plus a K5 core.
  // k=4 (support >= 2) kills isolated triangles but keeps K5.
  std::vector<std::pair<IT, IT>> edges;
  // K5 on 0..4
  for (IT i = 0; i < 5; ++i) {
    for (IT j = i + 1; j < 5; ++j) edges.push_back({i, j});
  }
  // pendant triangle 5-6-7 bridged from 0.
  edges.push_back({5, 6});
  edges.push_back({6, 7});
  edges.push_back({5, 7});
  edges.push_back({0, 5});
  auto g = csr_from_edges<IT, VT>(8, 8, [&] {
    std::vector<std::pair<IT, IT>> both;
    for (auto [u, v] : edges) {
      both.push_back({u, v});
      both.push_back({v, u});
    }
    return both;
  }());
  auto r = ktruss(g, 4);
  EXPECT_EQ(r.remaining_edges, 20u);  // the K5 only
  // All remaining vertices are in 0..4.
  for (IT i = 5; i < 8; ++i) EXPECT_EQ(r.truss.row_nnz(i), 0);
}

TEST(KTruss, IterativePeelingTakesMultipleRounds) {
  // A chain of triangles: each triangle edge has support 1 except shared
  // edges; k=4 forces cascading removal over >1 iteration on suitable
  // structures. Use an RMAT graph and simply check iteration accounting.
  auto g = rmat<IT, VT>(7, 1);
  auto r = ktruss(g, 5);
  EXPECT_GE(r.iterations, 1);
  EXPECT_GT(r.multiplies, 0u);
  EXPECT_GE(r.seconds_total, r.seconds_spgemm);
}

TEST(KTruss, ResultIsAFixedPoint) {
  auto g = rmat<IT, VT>(7, 2);
  auto r = ktruss(g, 5);
  if (r.remaining_edges > 0) {
    // Running again on the result must change nothing.
    auto again = ktruss(r.truss, 5);
    EXPECT_EQ(again.remaining_edges, r.remaining_edges);
    EXPECT_EQ(again.iterations, 1);
  }
}

TEST(KTruss, SymmetryPreserved) {
  auto g = rmat<IT, VT>(7, 3);
  auto r = ktruss(g, 4);
  if (r.remaining_edges > 0) {
    EXPECT_TRUE(is_pattern_symmetric(r.truss));
  }
}

TEST(KTruss, AllSchemesAgree) {
  auto g = rmat<IT, VT>(7, 4);
  const auto want = ktruss(g, 5).remaining_edges;
  for (auto algo : msx::testing::all_algos()) {
    MaskedOptions o;
    o.algo = algo;
    EXPECT_EQ(ktruss(g, 5, o).remaining_edges, want) << to_string(algo);
  }
}

TEST(KTruss, RejectsBadK) {
  auto g = complete_graph<IT, VT>(4);
  EXPECT_THROW(ktruss(g, 2), std::invalid_argument);
}

}  // namespace
}  // namespace msx
