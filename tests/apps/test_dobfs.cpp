#include "apps/dobfs.hpp"

#include <gtest/gtest.h>

#include <queue>

#include "gen/rmat.hpp"
#include "gen/structured.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

std::vector<std::int32_t> serial_bfs(const CSRMatrix<IT, VT>& g, IT src) {
  std::vector<std::int32_t> level(static_cast<std::size_t>(g.nrows()), -1);
  std::queue<IT> q;
  level[static_cast<std::size_t>(src)] = 0;
  q.push(src);
  while (!q.empty()) {
    const IT v = q.front();
    q.pop();
    const auto row = g.row(v);
    for (IT p = 0; p < row.size(); ++p) {
      const IT w = row.cols[p];
      if (level[static_cast<std::size_t>(w)] < 0) {
        level[static_cast<std::size_t>(w)] =
            level[static_cast<std::size_t>(v)] + 1;
        q.push(w);
      }
    }
  }
  return level;
}

TEST(DOBFS, PathGraphLevels) {
  auto g = path_graph<IT, VT>(8);
  auto r = direction_optimized_bfs(g, IT{0});
  for (IT v = 0; v < 8; ++v) EXPECT_EQ(r.levels[v], v);
  EXPECT_EQ(r.depth, 7);
}

TEST(DOBFS, AllDirectionsAgreeWithSerial) {
  auto g = rmat<IT, VT>(9, 21);
  const IT source = 5;
  const auto want = serial_bfs(g, source);
  for (auto dir : {BFSDirection::kAdaptive, BFSDirection::kPushOnly,
                   BFSDirection::kPullOnly}) {
    auto r = direction_optimized_bfs(g, source, dir);
    EXPECT_EQ(r.levels, want) << static_cast<int>(dir);
  }
}

TEST(DOBFS, AdaptiveUsesBothDirectionsOnSmallWorldGraph) {
  // R-MAT frontiers explode within a couple of levels, so the adaptive
  // traversal should pull in the middle. Source = the max-degree vertex
  // (scrambled R-MAT leaves many isolated vertices).
  auto g = rmat<IT, VT>(10, 22);
  IT source = 0;
  for (IT v = 1; v < g.nrows(); ++v) {
    if (g.row_nnz(v) > g.row_nnz(source)) source = v;
  }
  auto r = direction_optimized_bfs(g, source, BFSDirection::kAdaptive,
                                   /*alpha=*/4.0);
  EXPECT_GT(r.push_levels + r.pull_levels, 0);
  EXPECT_GT(r.pull_levels, 0);  // dense middle levels
}

TEST(DOBFS, PushOnlyNeverPulls) {
  auto g = rmat<IT, VT>(8, 23);
  auto r = direction_optimized_bfs(g, IT{0}, BFSDirection::kPushOnly);
  EXPECT_EQ(r.pull_levels, 0);
  auto r2 = direction_optimized_bfs(g, IT{0}, BFSDirection::kPullOnly);
  EXPECT_EQ(r2.push_levels, 0);
}

TEST(DOBFS, DisconnectedStaysUnreached) {
  std::vector<std::pair<IT, IT>> both{{0, 1}, {1, 0}, {2, 3}, {3, 2}};
  auto g = csr_from_edges<IT, VT>(4, 4, both);
  auto r = direction_optimized_bfs(g, IT{0});
  EXPECT_EQ(r.levels[0], 0);
  EXPECT_EQ(r.levels[1], 1);
  EXPECT_EQ(r.levels[2], -1);
  EXPECT_EQ(r.levels[3], -1);
}

TEST(DOBFS, GridMatchesSerial) {
  auto g = grid2d<IT, VT>(9, 11);
  const auto want = serial_bfs(g, IT{40});
  auto r = direction_optimized_bfs(g, IT{40});
  EXPECT_EQ(r.levels, want);
}

TEST(DOBFS, RejectsBadSource) {
  auto g = path_graph<IT, VT>(4);
  EXPECT_THROW(direction_optimized_bfs(g, IT{9}), std::invalid_argument);
}

}  // namespace
}  // namespace msx
