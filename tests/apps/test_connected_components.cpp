#include "apps/connected_components.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gen/rmat.hpp"
#include "gen/structured.hpp"
#include "matrix/build.hpp"
#include "test_helpers_apps.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

TEST(ConnectedComponents, SingleComponentGraphs) {
  EXPECT_EQ(connected_components(path_graph<IT, VT>(20)).num_components, 1);
  EXPECT_EQ(connected_components(cycle_graph<IT, VT>(9)).num_components, 1);
  EXPECT_EQ(connected_components(complete_graph<IT, VT>(8)).num_components,
            1);
  EXPECT_EQ(connected_components(grid2d<IT, VT>(7, 5)).num_components, 1);
}

TEST(ConnectedComponents, DisjointPieces) {
  // Two paths and one isolated vertex: 3 components.
  std::vector<std::pair<IT, IT>> both{{0, 1}, {1, 0}, {1, 2}, {2, 1},
                                      {3, 4}, {4, 3}};
  auto g = csr_from_edges<IT, VT>(6, 6, both);
  auto r = connected_components(g);
  EXPECT_EQ(r.num_components, 3);
  EXPECT_EQ(r.labels[0], 0);
  EXPECT_EQ(r.labels[1], 0);
  EXPECT_EQ(r.labels[2], 0);
  EXPECT_EQ(r.labels[3], 3);
  EXPECT_EQ(r.labels[4], 3);
  EXPECT_EQ(r.labels[5], 5);
}

TEST(ConnectedComponents, LabelsAreComponentMinima) {
  auto g = cycle_graph<IT, VT>(12);
  auto r = connected_components(g);
  for (auto l : r.labels) EXPECT_EQ(l, 0);
}

TEST(ConnectedComponents, MatchesUnionFindOnRmat) {
  auto g = rmat<IT, VT>(9, 31);
  // Union-find reference.
  std::vector<IT> parent(static_cast<std::size_t>(g.nrows()));
  for (IT v = 0; v < g.nrows(); ++v) parent[static_cast<std::size_t>(v)] = v;
  std::function<IT(IT)> find = [&](IT x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (IT i = 0; i < g.nrows(); ++i) {
    const auto row = g.row(i);
    for (IT p = 0; p < row.size(); ++p) {
      const IT a = find(i), b = find(row.cols[p]);
      if (a != b) parent[static_cast<std::size_t>(std::max(a, b))] =
          std::min(a, b);
    }
  }
  std::set<IT> want_roots;
  for (IT v = 0; v < g.nrows(); ++v) want_roots.insert(find(v));

  auto r = connected_components(g);
  EXPECT_EQ(r.num_components, static_cast<std::int64_t>(want_roots.size()));
  // Same partition: two vertices share a label iff they share a root.
  for (IT v = 0; v < g.nrows(); ++v) {
    EXPECT_EQ(r.labels[static_cast<std::size_t>(v)],
              static_cast<std::int64_t>(find(v)));
  }
}

TEST(ConnectedComponents, RoundsBoundedByDiameter) {
  auto g = path_graph<IT, VT>(30);
  auto r = connected_components(g);
  EXPECT_LE(r.rounds, 31);
  EXPECT_GE(r.rounds, 29);  // labels travel one hop per round
}

TEST(ConnectedComponents, SchemesAgree) {
  auto g = rmat<IT, VT>(8, 33);
  auto want = connected_components(g).labels;
  for (auto algo : {MaskedAlgo::kMSA, MaskedAlgo::kHash, MaskedAlgo::kHeap}) {
    MaskedOptions o;
    o.algo = algo;
    EXPECT_EQ(connected_components(g, o).labels, want) << to_string(algo);
  }
}

TEST(ConnectedComponents, RejectsMCA) {
  auto g = path_graph<IT, VT>(4);
  MaskedOptions o;
  o.algo = MaskedAlgo::kMCA;
  EXPECT_THROW(connected_components(g, o), std::invalid_argument);
}

}  // namespace
}  // namespace msx
