// Shared scheme lists for application tests.
#pragma once

#include <vector>

#include "core/options.hpp"

namespace msx::testing {

inline std::vector<MaskedAlgo> all_algos() {
  return {MaskedAlgo::kMSA,  MaskedAlgo::kHash,    MaskedAlgo::kMCA,
          MaskedAlgo::kHeap, MaskedAlgo::kHeapDot, MaskedAlgo::kInner,
          MaskedAlgo::kHybrid, MaskedAlgo::kMSABitmap};
}

inline std::vector<MaskedAlgo> complement_algos() {
  return {MaskedAlgo::kMSA,  MaskedAlgo::kHash,  MaskedAlgo::kHeap,
          MaskedAlgo::kHeapDot, MaskedAlgo::kInner, MaskedAlgo::kHybrid,
          MaskedAlgo::kMSABitmap};
}

inline std::vector<PhaseMode> all_phases() {
  return {PhaseMode::kOnePhase, PhaseMode::kTwoPhase};
}

}  // namespace msx::testing
