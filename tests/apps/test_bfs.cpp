#include "apps/bfs.hpp"

#include <gtest/gtest.h>

#include <queue>

#include "gen/rmat.hpp"
#include "gen/structured.hpp"
#include "test_helpers_apps.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

std::vector<std::int32_t> serial_bfs(const CSRMatrix<IT, VT>& g, IT src) {
  std::vector<std::int32_t> level(static_cast<std::size_t>(g.nrows()), -1);
  std::queue<IT> q;
  level[static_cast<std::size_t>(src)] = 0;
  q.push(src);
  while (!q.empty()) {
    const IT v = q.front();
    q.pop();
    const auto row = g.row(v);
    for (IT p = 0; p < row.size(); ++p) {
      const IT w = row.cols[p];
      if (level[static_cast<std::size_t>(w)] < 0) {
        level[static_cast<std::size_t>(w)] =
            level[static_cast<std::size_t>(v)] + 1;
        q.push(w);
      }
    }
  }
  return level;
}

TEST(BFS, PathGraphLevels) {
  auto g = path_graph<IT, VT>(6);
  auto r = multi_source_bfs(g, std::vector<IT>{0});
  for (IT v = 0; v < 6; ++v) EXPECT_EQ(r.levels[v], v);
  EXPECT_EQ(r.depth, 5);
}

TEST(BFS, MultiSourceIndependentRows) {
  auto g = path_graph<IT, VT>(6);
  auto r = multi_source_bfs(g, std::vector<IT>{0, 5});
  for (IT v = 0; v < 6; ++v) {
    EXPECT_EQ(r.levels[v], v);          // from source 0
    EXPECT_EQ(r.levels[6 + v], 5 - v);  // from source 5
  }
}

TEST(BFS, MatchesSerialOnRmat) {
  auto g = rmat<IT, VT>(8, 9);
  const std::vector<IT> sources{0, 5, 77};
  auto r = multi_source_bfs(g, sources);
  for (std::size_t q = 0; q < sources.size(); ++q) {
    auto want = serial_bfs(g, sources[q]);
    for (IT v = 0; v < g.nrows(); ++v) {
      ASSERT_EQ(r.levels[q * static_cast<std::size_t>(g.nrows()) +
                         static_cast<std::size_t>(v)],
                want[static_cast<std::size_t>(v)])
          << "source " << sources[q] << " vertex " << v;
    }
  }
}

TEST(BFS, UnreachableVerticesStayMinusOne) {
  std::vector<std::pair<IT, IT>> both{{0, 1}, {1, 0}};
  auto g = csr_from_edges<IT, VT>(4, 4, both);
  auto r = multi_source_bfs(g, std::vector<IT>{0});
  EXPECT_EQ(r.levels[0], 0);
  EXPECT_EQ(r.levels[1], 1);
  EXPECT_EQ(r.levels[2], -1);
  EXPECT_EQ(r.levels[3], -1);
}

TEST(BFS, SchemesAgree) {
  auto g = rmat<IT, VT>(7, 10);
  const std::vector<IT> sources{0, 1, 2};
  auto want = multi_source_bfs(g, sources).levels;
  for (auto algo : msx::testing::complement_algos()) {
    MaskedOptions o;
    o.algo = algo;
    EXPECT_EQ(multi_source_bfs(g, sources, o).levels, want)
        << to_string(algo);
  }
}

TEST(BFS, RejectsMCA) {
  auto g = path_graph<IT, VT>(4);
  MaskedOptions o;
  o.algo = MaskedAlgo::kMCA;
  EXPECT_THROW(multi_source_bfs(g, std::vector<IT>{0}, o),
               std::invalid_argument);
}

}  // namespace
}  // namespace msx
