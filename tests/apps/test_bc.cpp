#include "apps/bc.hpp"

#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "gen/rmat.hpp"
#include "gen/structured.hpp"
#include "test_helpers_apps.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

// Textbook serial Brandes (directed accumulation over the given sources),
// used as the oracle for the matrix-based implementation.
std::vector<double> brandes_reference(const CSRMatrix<IT, VT>& g,
                                      const std::vector<IT>& sources) {
  const IT n = g.nrows();
  std::vector<double> centrality(static_cast<std::size_t>(n), 0.0);
  for (IT s : sources) {
    std::vector<std::vector<IT>> pred(static_cast<std::size_t>(n));
    std::vector<double> sigma(static_cast<std::size_t>(n), 0.0);
    std::vector<int> dist(static_cast<std::size_t>(n), -1);
    std::vector<IT> order;
    sigma[static_cast<std::size_t>(s)] = 1.0;
    dist[static_cast<std::size_t>(s)] = 0;
    std::queue<IT> q;
    q.push(s);
    while (!q.empty()) {
      const IT v = q.front();
      q.pop();
      order.push_back(v);
      const auto row = g.row(v);
      for (IT p = 0; p < row.size(); ++p) {
        const IT w = row.cols[p];
        if (dist[static_cast<std::size_t>(w)] < 0) {
          dist[static_cast<std::size_t>(w)] =
              dist[static_cast<std::size_t>(v)] + 1;
          q.push(w);
        }
        if (dist[static_cast<std::size_t>(w)] ==
            dist[static_cast<std::size_t>(v)] + 1) {
          sigma[static_cast<std::size_t>(w)] +=
              sigma[static_cast<std::size_t>(v)];
          pred[static_cast<std::size_t>(w)].push_back(v);
        }
      }
    }
    std::vector<double> delta(static_cast<std::size_t>(n), 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const IT w = *it;
      for (IT v : pred[static_cast<std::size_t>(w)]) {
        delta[static_cast<std::size_t>(v)] +=
            sigma[static_cast<std::size_t>(v)] /
            sigma[static_cast<std::size_t>(w)] *
            (1.0 + delta[static_cast<std::size_t>(w)]);
      }
      if (w != s) {
        centrality[static_cast<std::size_t>(w)] +=
            delta[static_cast<std::size_t>(w)];
      }
    }
  }
  return centrality;
}

void expect_centrality_near(const std::vector<double>& got,
                            const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    EXPECT_NEAR(got[v], want[v], 1e-7) << "vertex " << v;
  }
}

TEST(BC, PathGraphKnownValues) {
  auto g = path_graph<IT, VT>(5);
  std::vector<IT> all{0, 1, 2, 3, 4};
  auto r = betweenness_centrality(g, all);
  const std::vector<double> expect{0, 6, 8, 6, 0};
  expect_centrality_near(r.centrality, expect);
  EXPECT_EQ(r.depth, 4);
}

TEST(BC, StarGraphCenterDominates) {
  const IT n = 12;
  auto g = star_graph<IT, VT>(n);
  std::vector<IT> all(n);
  for (IT i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
  auto r = betweenness_centrality(g, all);
  // Center lies on every leaf-to-leaf path: (n-1)(n-2) ordered pairs.
  EXPECT_NEAR(r.centrality[0], (n - 1.0) * (n - 2.0), 1e-9);
  for (IT v = 1; v < n; ++v) EXPECT_NEAR(r.centrality[v], 0.0, 1e-9);
}

TEST(BC, CycleMatchesBrandes) {
  auto g = cycle_graph<IT, VT>(9);
  std::vector<IT> all(9);
  for (IT i = 0; i < 9; ++i) all[static_cast<std::size_t>(i)] = i;
  auto r = betweenness_centrality(g, all);
  expect_centrality_near(r.centrality, brandes_reference(g, all));
}

TEST(BC, RmatSubsetOfSourcesMatchesBrandes) {
  auto g = rmat<IT, VT>(7, 5);
  std::vector<IT> sources{0, 3, 17, 42, 99};
  auto r = betweenness_centrality(g, sources);
  expect_centrality_near(r.centrality, brandes_reference(g, sources));
}

TEST(BC, GridMatchesBrandes) {
  auto g = grid2d<IT, VT>(5, 6);
  std::vector<IT> sources{0, 7, 13, 29};
  auto r = betweenness_centrality(g, sources);
  expect_centrality_near(r.centrality, brandes_reference(g, sources));
}

TEST(BC, SchemesAgree) {
  auto g = rmat<IT, VT>(7, 6);
  std::vector<IT> sources{1, 2, 3, 4};
  auto want = betweenness_centrality(g, sources).centrality;
  for (auto algo : msx::testing::complement_algos()) {
    MaskedOptions o;
    o.algo = algo;
    auto got = betweenness_centrality(g, sources, o).centrality;
    ASSERT_EQ(got.size(), want.size()) << to_string(algo);
    for (std::size_t v = 0; v < want.size(); ++v) {
      EXPECT_NEAR(got[v], want[v], 1e-7) << to_string(algo) << " v" << v;
    }
  }
}

TEST(BC, DisconnectedGraphHandled) {
  // Two disjoint paths; sources in one component must not credit the other.
  std::vector<std::pair<IT, IT>> edges{{0, 1}, {1, 2}, {3, 4}, {4, 5}};
  std::vector<std::pair<IT, IT>> both;
  for (auto [u, v] : edges) {
    both.push_back({u, v});
    both.push_back({v, u});
  }
  auto g = csr_from_edges<IT, VT>(6, 6, both);
  std::vector<IT> sources{0, 1, 2, 3, 4, 5};
  auto r = betweenness_centrality(g, sources);
  expect_centrality_near(r.centrality, brandes_reference(g, sources));
}

TEST(BC, TimingsAndMteps) {
  auto g = rmat<IT, VT>(7, 7);
  std::vector<IT> sources{0, 1};
  auto r = betweenness_centrality(g, sources);
  EXPECT_GT(r.seconds_total, 0.0);
  EXPECT_GT(r.mteps(g.nnz() / 2, sources.size()), 0.0);
}

TEST(BC, RejectsMCA) {
  auto g = path_graph<IT, VT>(4);
  MaskedOptions o;
  o.algo = MaskedAlgo::kMCA;
  EXPECT_THROW(betweenness_centrality(g, std::vector<IT>{0}, o),
               std::invalid_argument);
}

TEST(BC, RejectsBadSources) {
  auto g = path_graph<IT, VT>(4);
  EXPECT_THROW(betweenness_centrality(g, std::vector<IT>{}),
               std::invalid_argument);
  EXPECT_THROW(betweenness_centrality(g, std::vector<IT>{9}),
               std::invalid_argument);
}

}  // namespace
}  // namespace msx
