// The three masked triangle-counting formulations must agree with each
// other and with first principles on every graph.
#include "apps/tricount.hpp"

#include <gtest/gtest.h>

#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "gen/structured.hpp"
#include "matrix/ops.hpp"
#include "test_helpers_apps.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

const TriCountVariant kVariants[] = {TriCountVariant::kLL,
                                     TriCountVariant::kLU,
                                     TriCountVariant::kUU};

TEST(TriCountVariants, AgreeOnKnownGraphs) {
  struct Case {
    CSRMatrix<IT, VT> g;
    std::uint64_t expect;
  };
  std::vector<Case> cases;
  cases.push_back({complete_graph<IT, VT>(7), 35});    // C(7,3)
  cases.push_back({cycle_graph<IT, VT>(3), 1});
  cases.push_back({cycle_graph<IT, VT>(11), 0});
  cases.push_back({grid2d<IT, VT>(5, 5), 0});
  cases.push_back({star_graph<IT, VT>(20), 0});
  for (const auto& c : cases) {
    for (auto variant : kVariants) {
      MaskedOptions o;
      EXPECT_EQ(triangle_count(c.g, o, variant).triangles, c.expect)
          << static_cast<int>(variant);
    }
  }
}

TEST(TriCountVariants, AgreeOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto g = rmat<IT, VT>(8, seed);
    MaskedOptions o;
    const auto base = triangle_count(g, o, TriCountVariant::kLL).triangles;
    EXPECT_EQ(triangle_count(g, o, TriCountVariant::kLU).triangles, base)
        << "seed " << seed;
    EXPECT_EQ(triangle_count(g, o, TriCountVariant::kUU).triangles, base)
        << "seed " << seed;
  }
}

TEST(TriCountVariants, AllSchemesAllVariants) {
  auto g = symmetrize_pattern(
      remove_diagonal(erdos_renyi<IT, VT>(80, 80, 10, 3)));
  MaskedOptions base;
  const auto want = triangle_count(g, base).triangles;
  for (auto algo : msx::testing::all_algos()) {
    for (auto variant : kVariants) {
      MaskedOptions o;
      o.algo = algo;
      EXPECT_EQ(triangle_count(g, o, variant).triangles, want)
          << to_string(algo) << "/" << static_cast<int>(variant);
    }
  }
}

TEST(TriCountVariants, FlopCountsDifferAcrossVariants) {
  // The formulations do different amounts of work on skewed graphs — that is
  // the whole point of choosing among them.
  auto g = rmat<IT, VT>(9, 5);
  MaskedOptions o;
  const auto ll = triangle_count(g, o, TriCountVariant::kLL);
  const auto lu = triangle_count(g, o, TriCountVariant::kLU);
  EXPECT_EQ(ll.triangles, lu.triangles);
  EXPECT_NE(ll.multiplies, lu.multiplies);
}

}  // namespace
}  // namespace msx
