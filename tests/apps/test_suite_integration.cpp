// Whole-suite integration: every workload of the benchmark suite is pushed
// through triangle counting, k-truss, BFS and connected components, with
// cross-algorithm agreement on each. This is the closest thing to running
// the paper's evaluation end-to-end as a correctness (not performance)
// check.
#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/connected_components.hpp"
#include "apps/ktruss.hpp"
#include "apps/tricount.hpp"
#include "gen/suite.hpp"
#include "matrix/stats.hpp"
#include "test_helpers_apps.hpp"

namespace msx {
namespace {

using IT = SuiteIndex;

class SuiteIntegrationP : public ::testing::TestWithParam<std::string> {
 protected:
  SuiteMatrix load() {
    auto specs = graph_suite_filtered(GetParam(), /*scale_shift=*/-4);
    if (specs.empty()) ADD_FAILURE() << "workload missing: " << GetParam();
    return specs[0].make();
  }
};

TEST_P(SuiteIntegrationP, TriangleCountConsistentAcrossSchemes) {
  const auto g = load();
  MaskedOptions base;
  const auto want = triangle_count(g, base).triangles;
  for (auto algo :
       {MaskedAlgo::kHash, MaskedAlgo::kMCA, MaskedAlgo::kInner}) {
    MaskedOptions o;
    o.algo = algo;
    EXPECT_EQ(triangle_count(g, o).triangles, want) << to_string(algo);
  }
}

TEST_P(SuiteIntegrationP, KTrussConsistentAcrossSchemes) {
  const auto g = load();
  MaskedOptions base;
  const auto want = ktruss(g, 4, base).remaining_edges;
  for (auto algo : {MaskedAlgo::kHash, MaskedAlgo::kHeap}) {
    MaskedOptions o;
    o.algo = algo;
    EXPECT_EQ(ktruss(g, 4, o).remaining_edges, want) << to_string(algo);
  }
}

TEST_P(SuiteIntegrationP, BfsAndComponentsAgree) {
  const auto g = load();
  // BFS from the max-degree vertex reaches exactly the vertices of its
  // component (cross-validates BFS against label propagation).
  IT source = 0;
  for (IT v = 1; v < g.nrows(); ++v) {
    if (g.row_nnz(v) > g.row_nnz(source)) source = v;
  }
  const auto bfs = multi_source_bfs(g, std::vector<IT>{source});
  const auto cc = connected_components(g);
  const auto src_label = cc.labels[static_cast<std::size_t>(source)];
  for (IT v = 0; v < g.nrows(); ++v) {
    const bool reached = bfs.levels[static_cast<std::size_t>(v)] >= 0;
    const bool same_component =
        cc.labels[static_cast<std::size_t>(v)] == src_label;
    EXPECT_EQ(reached, same_component) << "vertex " << v;
  }
}

TEST_P(SuiteIntegrationP, StatsSane) {
  const auto g = load();
  const auto s = matrix_stats(g);
  EXPECT_EQ(s.nrows, s.ncols);
  EXPECT_GT(s.nnz, 0u);
  EXPECT_GE(s.max_degree, s.min_degree);
  EXPECT_GE(s.degree_skew, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SuiteIntegrationP,
    ::testing::Values("rmat-s10", "rmat-s12", "pref-attach-8", "er-d4",
                      "er-d16", "grid2d", "torus2d", "kron3x3", "star",
                      "bipartite"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace msx
