#include "apps/tricount.hpp"

#include <gtest/gtest.h>

#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "gen/structured.hpp"
#include "matrix/ops.hpp"
#include "test_helpers_apps.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

TEST(TriCount, CompleteGraphs) {
  // K_n has C(n,3) triangles.
  EXPECT_EQ(triangle_count(complete_graph<IT, VT>(4)).triangles, 4u);
  EXPECT_EQ(triangle_count(complete_graph<IT, VT>(6)).triangles, 20u);
  EXPECT_EQ(triangle_count(complete_graph<IT, VT>(10)).triangles, 120u);
}

TEST(TriCount, TriangleFreeGraphs) {
  EXPECT_EQ(triangle_count(path_graph<IT, VT>(20)).triangles, 0u);
  EXPECT_EQ(triangle_count(cycle_graph<IT, VT>(12)).triangles, 0u);
  EXPECT_EQ(triangle_count(star_graph<IT, VT>(30)).triangles, 0u);
  EXPECT_EQ(triangle_count(complete_bipartite<IT, VT>(5, 7)).triangles, 0u);
  EXPECT_EQ(triangle_count(grid2d<IT, VT>(6, 6)).triangles, 0u);
}

TEST(TriCount, SingleTriangle) {
  EXPECT_EQ(triangle_count(cycle_graph<IT, VT>(3)).triangles, 1u);
}

TEST(TriCount, AllSchemesAgree) {
  auto g = rmat<IT, VT>(8, 5);
  const auto want = triangle_count(g).triangles;
  EXPECT_GT(want, 0u);
  for (auto algo : msx::testing::all_algos()) {
    for (auto ph : msx::testing::all_phases()) {
      MaskedOptions o;
      o.algo = algo;
      o.phases = ph;
      EXPECT_EQ(triangle_count(g, o).triangles, want)
          << scheme_name(algo, ph);
    }
  }
}

TEST(TriCount, MatchesBruteForceOnRandomGraph) {
  auto g = symmetrize_pattern(
      remove_diagonal(erdos_renyi<IT, VT>(60, 60, 8, 9)));
  // Brute force: count ordered triples i<j<k with all three edges.
  auto has_edge = [&](IT u, IT v) {
    const auto row = g.row(u);
    for (IT p = 0; p < row.size(); ++p) {
      if (row.cols[p] == v) return true;
    }
    return false;
  };
  std::uint64_t brute = 0;
  for (IT i = 0; i < g.nrows(); ++i) {
    for (IT j = i + 1; j < g.nrows(); ++j) {
      if (!has_edge(i, j)) continue;
      for (IT k = j + 1; k < g.nrows(); ++k) {
        if (has_edge(i, k) && has_edge(j, k)) ++brute;
      }
    }
  }
  EXPECT_EQ(triangle_count(g).triangles, brute);
}

TEST(TriCount, ReportsFlopsAndTimings) {
  auto g = rmat<IT, VT>(7, 3);
  auto r = triangle_count(g);
  EXPECT_GT(r.multiplies, 0u);
  EXPECT_GE(r.seconds_total, r.seconds_spgemm);
  EXPECT_GT(r.seconds_spgemm, 0.0);
}

TEST(TriCount, RejectsNonSquare) {
  auto a = erdos_renyi<IT, VT>(4, 5, 2, 1);
  EXPECT_THROW(triangle_count(a), std::invalid_argument);
}

}  // namespace
}  // namespace msx
