#include "accum/msa.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

constexpr auto kAdd = [](VT a, VT b) { return a + b; };

TEST(MSAMaskedTest, InsertOnlyAllowedKeys) {
  MSAMasked<IT, VT> acc;
  acc.init(8);
  const std::vector<IT> mask{1, 4, 6};
  acc.prepare(mask);

  acc.insert(1, [] { return 2.0; }, kAdd);
  acc.insert(3, [] { return 99.0; }, kAdd);  // not allowed -> discarded
  acc.insert(4, [] { return 1.0; }, kAdd);
  acc.insert(4, [] { return 1.5; }, kAdd);   // accumulates

  std::vector<IT> cols(3);
  std::vector<VT> vals(3);
  const IT n = acc.gather_and_reset(mask, cols.data(), vals.data());
  ASSERT_EQ(n, 2);
  EXPECT_EQ(cols[0], 1);
  EXPECT_EQ(vals[0], 2.0);
  EXPECT_EQ(cols[1], 4);
  EXPECT_EQ(vals[1], 2.5);
}

TEST(MSAMaskedTest, LazyValueNotEvaluatedWhenDiscarded) {
  MSAMasked<IT, VT> acc;
  acc.init(4);
  const std::vector<IT> mask{0};
  acc.prepare(mask);
  int evaluations = 0;
  acc.insert(2, [&] { ++evaluations; return 1.0; }, kAdd);  // masked out
  acc.insert(0, [&] { ++evaluations; return 1.0; }, kAdd);  // allowed
  EXPECT_EQ(evaluations, 1);
  std::vector<IT> cols(1);
  std::vector<VT> vals(1);
  acc.gather_and_reset(mask, cols.data(), vals.data());
}

TEST(MSAMaskedTest, GatherResetsForNextRow) {
  MSAMasked<IT, VT> acc;
  acc.init(4);
  const std::vector<IT> mask{2};
  acc.prepare(mask);
  acc.insert(2, [] { return 5.0; }, kAdd);
  std::vector<IT> cols(1);
  std::vector<VT> vals(1);
  EXPECT_EQ(acc.gather_and_reset(mask, cols.data(), vals.data()), 1);

  // Without prepare, the key is NOTALLOWED again.
  acc.insert(2, [] { return 7.0; }, kAdd);
  EXPECT_EQ(acc.gather_and_reset(mask, cols.data(), vals.data()), 0);
}

TEST(MSAMaskedTest, SymbolicCountsFirstTransitionOnly) {
  MSAMasked<IT, VT> acc;
  acc.init(8);
  const std::vector<IT> mask{1, 3};
  acc.prepare(mask);
  EXPECT_EQ(acc.insert_symbolic(1), 1);
  EXPECT_EQ(acc.insert_symbolic(1), 0);
  EXPECT_EQ(acc.insert_symbolic(5), 0);  // not allowed
  EXPECT_EQ(acc.insert_symbolic(3), 1);
  acc.reset(mask);
  EXPECT_EQ(acc.insert_symbolic(1), 0);  // reset back to NOTALLOWED
}

TEST(MSAMaskedTest, EmptyMask) {
  MSAMasked<IT, VT> acc;
  acc.init(4);
  acc.prepare({});
  acc.insert(0, [] { return 1.0; }, kAdd);
  EXPECT_EQ(acc.gather_and_reset({}, nullptr, nullptr), 0);
}

TEST(MSAMaskedTest, GrowsAcrossInits) {
  MSAMasked<IT, VT> acc;
  acc.init(4);
  acc.init(1024);  // must grow without losing correctness
  const std::vector<IT> mask{1000};
  acc.prepare(mask);
  acc.insert(1000, [] { return 3.0; }, kAdd);
  std::vector<IT> cols(1);
  std::vector<VT> vals(1);
  EXPECT_EQ(acc.gather_and_reset(mask, cols.data(), vals.data()), 1);
  EXPECT_EQ(cols[0], 1000);
}

TEST(MSAComplementTest, MaskKeysDiscardedOthersKept) {
  MSAComplement<IT, VT> acc;
  acc.init(8);
  const std::vector<IT> mask{2, 5};
  acc.prepare(mask);

  acc.insert(2, [] { return 9.0; }, kAdd);  // masked -> discarded
  acc.insert(7, [] { return 1.0; }, kAdd);
  acc.insert(0, [] { return 2.0; }, kAdd);
  acc.insert(7, [] { return 0.5; }, kAdd);

  std::vector<IT> cols(4);
  std::vector<VT> vals(4);
  const IT n = acc.gather_and_reset(mask, cols.data(), vals.data());
  ASSERT_EQ(n, 2);
  // Sorted output.
  EXPECT_EQ(cols[0], 0);
  EXPECT_EQ(vals[0], 2.0);
  EXPECT_EQ(cols[1], 7);
  EXPECT_EQ(vals[1], 1.5);
}

TEST(MSAComplementTest, ResetRestoresDefaultAllowed) {
  MSAComplement<IT, VT> acc;
  acc.init(4);
  const std::vector<IT> mask{1};
  acc.prepare(mask);
  acc.insert(3, [] { return 1.0; }, kAdd);
  std::vector<IT> cols(4);
  std::vector<VT> vals(4);
  acc.gather_and_reset(mask, cols.data(), vals.data());

  // Next row with different mask: key 1 must be allowed again, key 3 fresh.
  const std::vector<IT> mask2{3};
  acc.prepare(mask2);
  acc.insert(1, [] { return 4.0; }, kAdd);
  acc.insert(3, [] { return 8.0; }, kAdd);  // masked now
  const IT n = acc.gather_and_reset(mask2, cols.data(), vals.data());
  ASSERT_EQ(n, 1);
  EXPECT_EQ(cols[0], 1);
  EXPECT_EQ(vals[0], 4.0);
}

TEST(MSAComplementTest, SymbolicTracksTouched) {
  MSAComplement<IT, VT> acc;
  acc.init(8);
  const std::vector<IT> mask{0};
  acc.prepare(mask);
  EXPECT_EQ(acc.insert_symbolic(0), 0);
  EXPECT_EQ(acc.insert_symbolic(4), 1);
  EXPECT_EQ(acc.insert_symbolic(4), 0);
  EXPECT_EQ(acc.touched_count(), 1u);
  acc.reset(mask);
  EXPECT_EQ(acc.touched_count(), 0u);
  // 4 must be allowed again.
  acc.prepare(mask);
  EXPECT_EQ(acc.insert_symbolic(4), 1);
  acc.reset(mask);
}

TEST(MSAComplementTest, LazyNotEvaluatedForMaskedKey) {
  MSAComplement<IT, VT> acc;
  acc.init(4);
  const std::vector<IT> mask{1};
  acc.prepare(mask);
  int evaluations = 0;
  acc.insert(1, [&] { ++evaluations; return 1.0; }, kAdd);
  EXPECT_EQ(evaluations, 0);
  acc.reset(mask);
}

}  // namespace
}  // namespace msx
