#include "accum/kmerge_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.hpp"

namespace msx {
namespace {

using IT = int32_t;

TEST(KMergeHeap, EmptyAndSize) {
  KMergeHeap<IT> h;
  EXPECT_TRUE(h.empty());
  h.push({5, 0, 1, 0});
  EXPECT_FALSE(h.empty());
  EXPECT_EQ(h.size(), 1u);
  h.pop();
  EXPECT_TRUE(h.empty());
}

TEST(KMergeHeap, PopsInColumnOrder) {
  KMergeHeap<IT> h;
  for (IT c : {7, 1, 9, 3, 5}) h.push({c, 0, 1, 0});
  std::vector<IT> out;
  while (!h.empty()) {
    out.push_back(h.top().col);
    h.pop();
  }
  EXPECT_EQ(out, (std::vector<IT>{1, 3, 5, 7, 9}));
}

TEST(KMergeHeap, DuplicateColumnsAllSurface) {
  KMergeHeap<IT> h;
  h.push({4, 0, 1, 0});
  h.push({4, 1, 2, 1});
  h.push({2, 2, 3, 2});
  std::vector<IT> out;
  while (!h.empty()) {
    out.push_back(h.top().col);
    h.pop();
  }
  EXPECT_EQ(out, (std::vector<IT>{2, 4, 4}));
}

TEST(KMergeHeap, ReplaceTopKeepsHeapProperty) {
  KMergeHeap<IT> h;
  for (IT c : {10, 20, 30}) h.push({c, 0, 1, 0});
  EXPECT_EQ(h.top().col, 10);
  h.replace_top({25, 0, 1, 0});
  EXPECT_EQ(h.top().col, 20);
  h.replace_top({40, 0, 1, 0});
  EXPECT_EQ(h.top().col, 25);
}

TEST(KMergeHeap, ClearAndReuse) {
  KMergeHeap<IT> h;
  h.push({1, 0, 1, 0});
  h.clear();
  EXPECT_TRUE(h.empty());
  h.push({2, 0, 1, 0});
  EXPECT_EQ(h.top().col, 2);
}

TEST(KMergeHeap, RandomizedAgainstSort) {
  Xoshiro256 rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    KMergeHeap<IT> h;
    std::vector<IT> cols;
    const int n = 1 + static_cast<int>(rng.next_below(200));
    for (int i = 0; i < n; ++i) {
      const IT c = static_cast<IT>(rng.next_below(50));
      cols.push_back(c);
      h.push({c, 0, 1, 0});
    }
    std::sort(cols.begin(), cols.end());
    for (IT expected : cols) {
      ASSERT_EQ(h.top().col, expected);
      h.pop();
    }
    EXPECT_TRUE(h.empty());
  }
}

TEST(KMergeHeap, CursorPayloadPreserved) {
  KMergeHeap<IT> h;
  h.push({3, 17, 29, 8});
  const auto& top = h.top();
  EXPECT_EQ(top.bpos, 17);
  EXPECT_EQ(top.bend, 29);
  EXPECT_EQ(top.arow, 8);
}

}  // namespace
}  // namespace msx
