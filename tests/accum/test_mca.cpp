#include "accum/mca.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

constexpr auto kAdd = [](VT a, VT b) { return a + b; };

TEST(MCATest, RankIndexedInsertAndGather) {
  MCAAccumulator<IT, VT> acc;
  const std::vector<IT> mask_cols{10, 20, 30};  // ranks 0, 1, 2
  acc.prepare(3);
  acc.insert(1, [] { return 2.0; }, kAdd);  // column 20
  acc.insert(1, [] { return 3.0; }, kAdd);
  acc.insert(2, [] { return 7.0; }, kAdd);  // column 30

  std::vector<IT> cols(3);
  std::vector<VT> vals(3);
  const IT n = acc.gather(mask_cols, cols.data(), vals.data());
  ASSERT_EQ(n, 2);
  EXPECT_EQ(cols[0], 20);
  EXPECT_EQ(vals[0], 5.0);
  EXPECT_EQ(cols[1], 30);
  EXPECT_EQ(vals[1], 7.0);
}

TEST(MCATest, PrepareResetsAllRanks) {
  MCAAccumulator<IT, VT> acc;
  acc.prepare(2);
  acc.insert(0, [] { return 1.0; }, kAdd);
  acc.prepare(2);  // new row
  const std::vector<IT> mask_cols{5, 6};
  std::vector<IT> cols(2);
  std::vector<VT> vals(2);
  EXPECT_EQ(acc.gather(mask_cols, cols.data(), vals.data()), 0);
}

TEST(MCATest, OnlyTwoStatesNeeded) {
  // Every rank starts ALLOWED (no NOTALLOWED state exists): first insert on
  // any rank must succeed.
  MCAAccumulator<IT, VT> acc;
  acc.prepare(4);
  for (IT r = 0; r < 4; ++r) {
    acc.insert(r, [r] { return static_cast<VT>(r + 1); }, kAdd);
  }
  const std::vector<IT> mask_cols{2, 4, 6, 8};
  std::vector<IT> cols(4);
  std::vector<VT> vals(4);
  EXPECT_EQ(acc.gather(mask_cols, cols.data(), vals.data()), 4);
  EXPECT_EQ(vals[3], 4.0);
}

TEST(MCATest, SymbolicFirstTransitionOnly) {
  MCAAccumulator<IT, VT> acc;
  acc.prepare(3);
  EXPECT_EQ(acc.insert_symbolic(0), 1);
  EXPECT_EQ(acc.insert_symbolic(0), 0);
  EXPECT_EQ(acc.insert_symbolic(2), 1);
}

TEST(MCATest, ShrinkAndGrowAcrossRows) {
  MCAAccumulator<IT, VT> acc;
  acc.prepare(64);
  for (IT r = 0; r < 64; ++r) acc.insert(r, [] { return 1.0; }, kAdd);
  acc.prepare(2);  // shrink: only first two ranks active
  acc.insert(1, [] { return 5.0; }, kAdd);
  const std::vector<IT> mask_cols{100, 200};
  std::vector<IT> cols(2);
  std::vector<VT> vals(2);
  const IT n = acc.gather(mask_cols, cols.data(), vals.data());
  ASSERT_EQ(n, 1);
  EXPECT_EQ(cols[0], 200);
  EXPECT_EQ(vals[0], 5.0);

  acc.prepare(128);  // grow again
  acc.insert(127, [] { return 9.0; }, kAdd);
  std::vector<IT> mask_big(128);
  for (IT r = 0; r < 128; ++r) mask_big[r] = r;
  std::vector<IT> cols_big(128);
  std::vector<VT> vals_big(128);
  EXPECT_EQ(acc.gather(mask_big, cols_big.data(), vals_big.data()), 1);
  EXPECT_EQ(cols_big[0], 127);
}

TEST(MCATest, LazyEvaluationAlwaysRuns) {
  // MCA keys are pre-filtered by the kernel's merge, so insert always
  // evaluates — document that behaviour.
  MCAAccumulator<IT, VT> acc;
  acc.prepare(1);
  int evals = 0;
  acc.insert(0, [&] { ++evals; return 1.0; }, kAdd);
  EXPECT_EQ(evals, 1);
}

}  // namespace
}  // namespace msx
