#include "accum/msa_bitmap.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

constexpr auto kAdd = [](VT a, VT b) { return a + b; };

TEST(MSABitmap, BasicInsertGather) {
  MSABitmapMasked<IT, VT> acc;
  acc.init(100);
  const std::vector<IT> mask{3, 31, 32, 63, 64, 99};  // word-boundary keys
  acc.prepare(mask);
  acc.insert(31, [] { return 1.0; }, kAdd);
  acc.insert(32, [] { return 2.0; }, kAdd);
  acc.insert(32, [] { return 3.0; }, kAdd);
  acc.insert(50, [] { return 9.0; }, kAdd);  // not allowed

  std::vector<IT> cols(6);
  std::vector<VT> vals(6);
  const IT n = acc.gather_and_reset(mask, cols.data(), vals.data());
  ASSERT_EQ(n, 2);
  EXPECT_EQ(cols[0], 31);
  EXPECT_EQ(vals[0], 1.0);
  EXPECT_EQ(cols[1], 32);
  EXPECT_EQ(vals[1], 5.0);
}

TEST(MSABitmap, StatesIndependentWithinWord) {
  // 32 keys share one 64-bit word; flipping one must not disturb others.
  MSABitmapMasked<IT, VT> acc;
  acc.init(32);
  std::vector<IT> mask;
  for (IT j = 0; j < 32; j += 2) mask.push_back(j);  // even keys allowed
  acc.prepare(mask);
  for (IT j = 0; j < 32; ++j) {
    acc.insert(j, [j] { return static_cast<VT>(j); }, kAdd);
  }
  std::vector<IT> cols(16);
  std::vector<VT> vals(16);
  const IT n = acc.gather_and_reset(mask, cols.data(), vals.data());
  ASSERT_EQ(n, 16);
  for (IT k = 0; k < 16; ++k) {
    EXPECT_EQ(cols[k], 2 * k);
    EXPECT_EQ(vals[k], static_cast<VT>(2 * k));
  }
}

TEST(MSABitmap, GatherResetsForNextRow) {
  MSABitmapMasked<IT, VT> acc;
  acc.init(10);
  const std::vector<IT> mask{5};
  acc.prepare(mask);
  acc.insert(5, [] { return 1.0; }, kAdd);
  std::vector<IT> cols(1);
  std::vector<VT> vals(1);
  EXPECT_EQ(acc.gather_and_reset(mask, cols.data(), vals.data()), 1);
  // Without prepare, key 5 is NOTALLOWED again.
  acc.insert(5, [] { return 2.0; }, kAdd);
  EXPECT_EQ(acc.gather_and_reset(mask, cols.data(), vals.data()), 0);
}

TEST(MSABitmap, LazyEvaluation) {
  MSABitmapMasked<IT, VT> acc;
  acc.init(8);
  const std::vector<IT> mask{1};
  acc.prepare(mask);
  int evals = 0;
  acc.insert(3, [&] { ++evals; return 1.0; }, kAdd);
  EXPECT_EQ(evals, 0);
  acc.insert(1, [&] { ++evals; return 1.0; }, kAdd);
  EXPECT_EQ(evals, 1);
  acc.reset(mask);
}

TEST(MSABitmap, SymbolicCounts) {
  MSABitmapMasked<IT, VT> acc;
  acc.init(70);
  const std::vector<IT> mask{0, 33, 69};
  acc.prepare(mask);
  EXPECT_EQ(acc.insert_symbolic(0), 1);
  EXPECT_EQ(acc.insert_symbolic(0), 0);
  EXPECT_EQ(acc.insert_symbolic(12), 0);
  EXPECT_EQ(acc.insert_symbolic(33), 1);
  EXPECT_EQ(acc.insert_symbolic(69), 1);
  acc.reset(mask);
  EXPECT_EQ(acc.insert_symbolic(33), 0);
}

TEST(MSABitmap, GrowsAcrossInits) {
  MSABitmapMasked<IT, VT> acc;
  acc.init(8);
  acc.init(4096);
  const std::vector<IT> mask{4000};
  acc.prepare(mask);
  acc.insert(4000, [] { return 7.0; }, kAdd);
  std::vector<IT> cols(1);
  std::vector<VT> vals(1);
  ASSERT_EQ(acc.gather_and_reset(mask, cols.data(), vals.data()), 1);
  EXPECT_EQ(cols[0], 4000);
}

}  // namespace
}  // namespace msx
