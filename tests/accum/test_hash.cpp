#include "accum/hash.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

constexpr auto kAdd = [](VT a, VT b) { return a + b; };

TEST(HashMaskedTest, BasicInsertGather) {
  HashMasked<IT, VT> acc;
  const std::vector<IT> mask{3, 10, 500};
  acc.prepare(mask);
  acc.insert(10, [] { return 1.0; }, kAdd);
  acc.insert(10, [] { return 2.0; }, kAdd);
  acc.insert(500, [] { return 5.0; }, kAdd);
  acc.insert(7, [] { return 100.0; }, kAdd);  // not in mask

  std::vector<IT> cols(3);
  std::vector<VT> vals(3);
  const IT n = acc.gather(mask, cols.data(), vals.data());
  ASSERT_EQ(n, 2);
  EXPECT_EQ(cols[0], 10);
  EXPECT_EQ(vals[0], 3.0);
  EXPECT_EQ(cols[1], 500);
  EXPECT_EQ(vals[1], 5.0);
}

TEST(HashMaskedTest, LoadFactorQuarter) {
  HashMasked<IT, VT> acc;
  std::vector<IT> mask;
  for (IT j = 0; j < 100; ++j) mask.push_back(j * 3);
  acc.prepare(mask);
  // capacity = next_pow2(4*100) = 512
  EXPECT_EQ(acc.capacity(), 512u);
}

TEST(HashMaskedTest, PrepareClearsPreviousRow) {
  HashMasked<IT, VT> acc;
  const std::vector<IT> m1{1, 2};
  acc.prepare(m1);
  acc.insert(1, [] { return 5.0; }, kAdd);

  const std::vector<IT> m2{2, 9};
  acc.prepare(m2);
  acc.insert(9, [] { return 1.0; }, kAdd);
  std::vector<IT> cols(2);
  std::vector<VT> vals(2);
  const IT n = acc.gather(m2, cols.data(), vals.data());
  ASSERT_EQ(n, 1);  // key 1 must be gone, key 2 never set
  EXPECT_EQ(cols[0], 9);
}

TEST(HashMaskedTest, ShrinkingRowStillCorrect) {
  HashMasked<IT, VT> acc;
  std::vector<IT> big;
  for (IT j = 0; j < 64; ++j) big.push_back(j);
  acc.prepare(big);
  for (IT j = 0; j < 64; ++j) acc.insert(j, [] { return 1.0; }, kAdd);

  const std::vector<IT> small{5};
  acc.prepare(small);  // smaller active capacity; stale keys beyond window
  acc.insert(5, [] { return 2.0; }, kAdd);
  std::vector<IT> cols(1);
  std::vector<VT> vals(1);
  EXPECT_EQ(acc.gather(small, cols.data(), vals.data()), 1);
  EXPECT_EQ(vals[0], 2.0);
}

TEST(HashMaskedTest, CollidingKeysAllStored) {
  // Keys chosen dense enough to force probe chains at capacity 32.
  HashMasked<IT, VT> acc;
  std::vector<IT> mask;
  for (IT j = 0; j < 8; ++j) mask.push_back(j * 32);  // same low bits
  acc.prepare(mask);
  for (IT j = 0; j < 8; ++j) {
    acc.insert(j * 32, [j] { return static_cast<VT>(j); }, kAdd);
  }
  std::vector<IT> cols(8);
  std::vector<VT> vals(8);
  const IT n = acc.gather(mask, cols.data(), vals.data());
  ASSERT_EQ(n, 8);  // structural semantics: value 0.0 still counts as SET
  for (IT j = 0; j < 8; ++j) {
    EXPECT_EQ(cols[j], j * 32);
    EXPECT_EQ(vals[j], static_cast<VT>(j));
  }
}

TEST(HashMaskedTest, SymbolicCounts) {
  HashMasked<IT, VT> acc;
  const std::vector<IT> mask{4, 8};
  acc.prepare(mask);
  EXPECT_EQ(acc.insert_symbolic(4), 1);
  EXPECT_EQ(acc.insert_symbolic(4), 0);
  EXPECT_EQ(acc.insert_symbolic(12), 0);
  EXPECT_EQ(acc.insert_symbolic(8), 1);
}

TEST(HashComplementTest, MaskKeysRejected) {
  HashComplement<IT, VT> acc;
  const std::vector<IT> mask{7};
  acc.prepare(mask, 8);
  int evals = 0;
  acc.insert(7, [&] { ++evals; return 1.0; }, kAdd);
  EXPECT_EQ(evals, 0);
  acc.insert(3, [&] { ++evals; return 2.0; }, kAdd);
  acc.insert(9, [&] { ++evals; return 3.0; }, kAdd);
  acc.insert(3, [&] { ++evals; return 0.5; }, kAdd);
  EXPECT_EQ(evals, 3);

  std::vector<IT> cols(4);
  std::vector<VT> vals(4);
  const IT n = acc.gather(cols.data(), vals.data());
  ASSERT_EQ(n, 2);
  EXPECT_EQ(cols[0], 3);
  EXPECT_EQ(vals[0], 2.5);
  EXPECT_EQ(cols[1], 9);
  EXPECT_EQ(vals[1], 3.0);
}

TEST(HashComplementTest, EmptyMaskActsAsPlainAccumulator) {
  HashComplement<IT, VT> acc;
  acc.prepare({}, 4);
  acc.insert(2, [] { return 1.0; }, kAdd);
  acc.insert(0, [] { return 2.0; }, kAdd);
  std::vector<IT> cols(2);
  std::vector<VT> vals(2);
  const IT n = acc.gather(cols.data(), vals.data());
  ASSERT_EQ(n, 2);
  EXPECT_EQ(cols[0], 0);  // sorted
  EXPECT_EQ(cols[1], 2);
}

TEST(HashComplementTest, SymbolicTouchedCount) {
  HashComplement<IT, VT> acc;
  const std::vector<IT> mask{1};
  acc.prepare(mask, 4);
  EXPECT_EQ(acc.insert_symbolic(1), 0);
  EXPECT_EQ(acc.insert_symbolic(2), 1);
  EXPECT_EQ(acc.insert_symbolic(2), 0);
  EXPECT_EQ(acc.touched_count(), 1u);
}

}  // namespace
}  // namespace msx
