// ExecContext: serial/OpenMP/arena loops must cover every index exactly
// once, hand out in-range slots, and honour block boundaries.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/exec_context.hpp"
#include "runtime/thread_pool.hpp"

using namespace msx;

namespace {

void check_rows_covered(const ExecContext& ctx, int concurrency) {
  constexpr int kRows = 500;
  std::vector<std::atomic<int>> hits(kRows);
  ctx.for_rows(kRows, Schedule::kDynamic, 0, [&](int slot, int i) {
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, concurrency);
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int i = 0; i < kRows; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
  }
}

void check_blocks_covered(const ExecContext& ctx, int concurrency) {
  const std::vector<std::int64_t> bounds{0, 3, 3, 10, 64, 100};
  std::vector<std::atomic<int>> hits(100);
  std::atomic<int> blocks_seen{0};
  ctx.for_block_ranges<int>(bounds, [&](int slot, int blk, int lo, int hi) {
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, concurrency);
    EXPECT_GE(blk, 0);
    EXPECT_LT(blk, 5);
    EXPECT_EQ(lo, static_cast<int>(bounds[static_cast<std::size_t>(blk)]));
    EXPECT_EQ(hi, static_cast<int>(bounds[static_cast<std::size_t>(blk) + 1]));
    blocks_seen.fetch_add(1);
    for (int i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  EXPECT_EQ(blocks_seen.load(), 5);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
  }
}

}  // namespace

TEST(ExecContext, SerialCoversEverything) {
  const auto ctx = ExecContext::serial();
  EXPECT_TRUE(ctx.is_serial());
  EXPECT_EQ(ctx.concurrency(), 1);
  EXPECT_EQ(ctx.concurrency(8), 1);  // threads override is OpenMP-only
  check_rows_covered(ctx, 1);
  check_blocks_covered(ctx, 1);
}

TEST(ExecContext, OpenMPCoversEverything) {
  const auto& ctx = ExecContext::openmp();
  EXPECT_TRUE(ctx.is_openmp());
  EXPECT_EQ(ctx.concurrency(), max_threads());
  EXPECT_EQ(ctx.concurrency(3), 3);
  check_rows_covered(ctx, max_threads());
  check_blocks_covered(ctx, max_threads());
}

TEST(ExecContext, ArenaCoversEverything) {
  ThreadPool pool(3);
  const auto ctx = ExecContext::arena(pool);
  EXPECT_FALSE(ctx.is_openmp());
  EXPECT_FALSE(ctx.is_serial());
  EXPECT_EQ(ctx.concurrency(), pool.size() + 1);
  check_rows_covered(ctx, pool.size() + 1);
  check_blocks_covered(ctx, pool.size() + 1);
}

TEST(ExecContext, EmptyRangesAreNoOps) {
  ThreadPool pool(2);
  for (const auto& ctx :
       {ExecContext::serial(), ExecContext::arena(pool)}) {
    int calls = 0;
    ctx.for_rows(0, Schedule::kStatic, 0, [&](int, int) { ++calls; });
    ctx.for_block_ranges<int>(std::vector<std::int64_t>{},
                              [&](int, int, int, int) { ++calls; });
    ctx.for_block_ranges<int>(std::vector<std::int64_t>{0},
                              [&](int, int, int, int) { ++calls; });
    EXPECT_EQ(calls, 0);
  }
}

TEST(ExecContext, ArenaIgnoresChunkOverrideButCoversEverything) {
  // The chunk knob is an OpenMP tuning parameter; arena mode ignores it
  // (a tiny chunk would serialize the shared counter) but must still cover
  // each row exactly once.
  ThreadPool pool(2);
  const auto ctx = ExecContext::arena(pool);
  constexpr int kRows = 97;
  std::vector<std::atomic<int>> hits(kRows);
  ctx.for_rows(kRows, Schedule::kDynamic, 1, [&](int, int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int i = 0; i < kRows; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
  }
}
