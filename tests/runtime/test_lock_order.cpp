// Lock-order checker regression suite (ISSUE 6).
//
// Debug builds: msx::Mutex asserts the LockRank hierarchy on every acquire —
// a deliberately inverted acquisition must be reported with both hold sites.
// Release builds: the checker is compiled away entirely; the static_assert
// below pins msx::Mutex to the exact layout of std::mutex so the wrapper is
// provably zero-cost.
//
// The suite is TSan-clean (the CI tsan job runs runtime_*): the checker's
// held-stack is thread_local and the violation handler below runs on the one
// thread that trips it.
#include "common/thread_annotations.hpp"

#include <gtest/gtest.h>

#include <mutex>

#if !MSX_LOCK_ORDER_CHECK

// Release: rank/name members and every check disappear; the wrapper is
// layout-identical to the std::mutex it forwards to.
static_assert(sizeof(msx::Mutex) == sizeof(std::mutex),
              "msx::Mutex must be zero-cost when lock-order checking is off");

TEST(LockOrder, CheckerCompiledAway) {
  msx::Mutex a(msx::LockRank::kThreadPool, "a");
  msx::Mutex b(msx::LockRank::kPlanCache, "b");
  // Inverted ranks are legal (unchecked) here; the pair must simply work.
  msx::MutexLock hold_b(&b);
  msx::MutexLock hold_a(&a);
  SUCCEED();
}

#else  // MSX_LOCK_ORDER_CHECK

namespace {

// The handler seam: capture violations instead of aborting.
struct Captured {
  bool fired = false;
  msx::LockOrderViolation v{};
};
Captured g_captured;

void capture_handler(const msx::LockOrderViolation& v) {
  g_captured.fired = true;
  g_captured.v = v;
}

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_captured = Captured{};
    prev_ = msx::set_lock_order_handler(&capture_handler);
  }
  void TearDown() override { msx::set_lock_order_handler(prev_); }

  msx::LockOrderHandler prev_ = nullptr;
};

TEST_F(LockOrderTest, InOrderAcquisitionIsClean) {
  msx::Mutex outer(msx::LockRank::kExecutor, "outer");
  msx::Mutex inner(msx::LockRank::kPlanCache, "inner");
  {
    msx::MutexLock lock_outer(&outer);
    msx::MutexLock lock_inner(&inner);
    EXPECT_FALSE(g_captured.fired);
  }
  // Re-acquirable after clean release (held-stack bookkeeping balanced).
  {
    msx::MutexLock again(&outer);
  }
  EXPECT_FALSE(g_captured.fired);
}

TEST_F(LockOrderTest, SeededInversionIsCaught) {
  msx::Mutex cache(msx::LockRank::kPlanCache, "test-cache");
  msx::Mutex pool(msx::LockRank::kThreadPool, "test-pool");
  {
    msx::MutexLock lock_cache(&cache);  // rank 70 held...
    msx::MutexLock lock_pool(&pool);    // ...acquiring rank 60: inversion
  }
  ASSERT_TRUE(g_captured.fired);
  EXPECT_EQ(g_captured.v.held_rank, msx::LockRank::kPlanCache);
  EXPECT_EQ(g_captured.v.acquiring_rank, msx::LockRank::kThreadPool);
  EXPECT_STREQ(g_captured.v.held_name, "test-cache");
  EXPECT_STREQ(g_captured.v.acquiring_name, "test-pool");
  // Both hold sites point into this file.
  EXPECT_NE(nullptr, g_captured.v.held_file);
  EXPECT_NE(nullptr, g_captured.v.acquiring_file);
  EXPECT_TRUE(std::string(g_captured.v.held_file).find("test_lock_order") !=
              std::string::npos);
  EXPECT_GT(g_captured.v.acquiring_line, g_captured.v.held_line);
}

TEST_F(LockOrderTest, EqualRankIsAnInversion) {
  // Equal ranks may never nest (no order is defined between them).
  msx::Mutex a(msx::LockRank::kShard, "shard-a");
  msx::Mutex b(msx::LockRank::kShard, "shard-b");
  {
    msx::MutexLock lock_a(&a);
    msx::MutexLock lock_b(&b);
  }
  EXPECT_TRUE(g_captured.fired);
}

TEST_F(LockOrderTest, UnrankedMutexesAreExempt) {
  msx::Mutex ranked(msx::LockRank::kTransport, "ranked");
  msx::Mutex plain;  // kUnranked
  {
    msx::MutexLock lock_ranked(&ranked);
    msx::MutexLock lock_plain(&plain);  // unranked under ranked: fine
  }
  EXPECT_FALSE(g_captured.fired);
  {
    msx::MutexLock lock_plain(&plain);
    msx::MutexLock lock_ranked(&ranked);  // ranked under unranked: also fine
  }
  EXPECT_FALSE(g_captured.fired);
}

TEST_F(LockOrderTest, ReleaseOutOfOrderStaysBalanced) {
  // Hand-over-hand style release (not LIFO) must not confuse the bookkeeping.
  msx::Mutex a(msx::LockRank::kRouter, "a");
  msx::Mutex b(msx::LockRank::kShard, "b");
  a.lock();
  b.lock();
  a.unlock();  // released while b is still held
  b.unlock();
  EXPECT_FALSE(g_captured.fired);
  // The held stack is empty again: a fresh in-order pair stays clean.
  {
    msx::MutexLock lock_a(&a);
    msx::MutexLock lock_b(&b);
  }
  EXPECT_FALSE(g_captured.fired);
}

TEST_F(LockOrderTest, TryLockIsExempt) {
  // try_lock cannot deadlock (it fails instead of blocking), so an inverted
  // try_lock is allowed by design.
  msx::Mutex low(msx::LockRank::kClientSession, "low");
  msx::Mutex high(msx::LockRank::kTransport, "high");
  {
    msx::MutexLock lock_high(&high);
    ASSERT_TRUE(low.try_lock());
    EXPECT_FALSE(g_captured.fired);
    low.unlock();
  }
  EXPECT_FALSE(g_captured.fired);
}

TEST_F(LockOrderTest, CondVarWaitKeepsHeldStackCorrect) {
  // A cv wait releases and reacquires the mutex internally (bypassing the
  // checker), which must leave the thread's held stack unchanged — an
  // in-order acquisition after the wait must still be clean, and a seeded
  // inversion after the wait must still fire.
  msx::Mutex mu(msx::LockRank::kExecutor, "cv-mu");
  msx::CondVar cv;
  {
    msx::MutexLock lock(&mu);
    cv.wait_for(mu, std::chrono::milliseconds(1));  // times out, reacquires
    msx::Mutex inner(msx::LockRank::kPlanCache, "cv-inner");
    msx::MutexLock lock_inner(&inner);
    EXPECT_FALSE(g_captured.fired);
  }
  {
    msx::MutexLock lock(&mu);
    cv.wait_for(mu, std::chrono::milliseconds(1));
    msx::Mutex lower(msx::LockRank::kShard, "cv-lower");
    msx::MutexLock lock_lower(&lower);  // 40 under 50: inversion
  }
  EXPECT_TRUE(g_captured.fired);
}

}  // namespace

#endif  // MSX_LOCK_ORDER_CHECK
