// BatchExecutor: moldable policy, both lanes, stats, aliasing, error
// propagation and the executor-batched apps.
#include <gtest/gtest.h>

#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "apps/bc.hpp"
#include "apps/bfs.hpp"
#include "core/masked_spgemm.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "matrix/ops.hpp"
#include "runtime/batch.hpp"

using namespace msx;

using IT = int32_t;
using VT = double;
using SR = PlusTimes<VT>;
using Mat = CSRMatrix<IT, VT>;
using Exec = BatchExecutor<SR, IT, VT>;

TEST(MoldableShape, ThresholdSplitsSmallAndWide) {
  EXPECT_EQ(moldable_shape(10.0, 100.0), JobShape::kSmall);
  EXPECT_EQ(moldable_shape(100.0, 100.0), JobShape::kWide);
  EXPECT_EQ(moldable_shape(1e12, 100.0), JobShape::kWide);
  // Non-positive threshold forces the small lane.
  EXPECT_EQ(moldable_shape(1e12, 0.0), JobShape::kSmall);
}

TEST(BatchExecutor, SmallJobsMatchDirectCalls) {
  BatchLimits limits;
  limits.pool_threads = 4;
  Exec exec(limits);
  const auto a = erdos_renyi<IT, VT>(120, 120, 5, 1);
  const auto b = erdos_renyi<IT, VT>(120, 120, 5, 2);
  const auto m = erdos_renyi<IT, VT>(120, 120, 7, 3);
  const auto want = masked_spgemm<SR>(a, b, m);

  std::vector<std::future<Mat>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(exec.submit(a, b, m));
  for (auto& f : futures) EXPECT_TRUE(f.get() == want);

  exec.wait_idle();  // bookkeeping settles after the futures
  const auto st = exec.stats();
  EXPECT_EQ(st.submitted, 16u);
  EXPECT_EQ(st.completed, 16u);
  EXPECT_EQ(st.small_jobs, 16u);
  EXPECT_EQ(st.wide_jobs, 0u);
  EXPECT_GE(st.cache.hits, 1u);
}

TEST(BatchExecutor, WideJobsMatchDirectCalls) {
  BatchLimits limits;
  limits.pool_threads = 4;
  limits.wide_work_threshold = 1.0;  // everything is wide
  Exec exec(limits);
  const auto a = erdos_renyi<IT, VT>(300, 300, 8, 4);
  const auto m = erdos_renyi<IT, VT>(300, 300, 8, 5);
  const auto want = masked_spgemm<SR>(a, a, m);

  std::vector<std::future<Mat>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(exec.submit(a, a, m));
  for (auto& f : futures) EXPECT_TRUE(f.get() == want);
  const auto st = exec.stats();
  EXPECT_EQ(st.wide_jobs, 6u);
  EXPECT_EQ(st.small_jobs, 0u);
}

TEST(BatchExecutor, FullyAliasedOperandsWork) {
  Exec exec;
  const auto a = erdos_renyi<IT, VT>(100, 100, 6, 6);
  const auto want = masked_spgemm<SR>(a, a, a);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(exec.submit(a, a, a).get() == want);
  }
  EXPECT_GE(exec.stats().cache.hits, 3u);
}

TEST(BatchExecutor, ValueRefreshAcrossRepeatedStructure) {
  Exec exec;
  const auto b = erdos_renyi<IT, VT>(90, 90, 5, 7);
  const auto m = erdos_renyi<IT, VT>(90, 90, 6, 8);
  Mat a = erdos_renyi<IT, VT>(90, 90, 5, 9);
  for (int round = 0; round < 4; ++round) {
    for (auto& v : a.mutable_values()) v += static_cast<double>(round);
    const auto want = masked_spgemm<SR>(a, b, m);
    EXPECT_TRUE(exec.submit(a, b, m).get() == want) << round;
  }
}

TEST(BatchExecutor, OptionVariantsAreIndependentlyCached) {
  Exec exec;
  const auto a = erdos_renyi<IT, VT>(110, 110, 6, 10);
  const auto m = erdos_renyi<IT, VT>(110, 110, 7, 11);
  for (auto algo : {MaskedAlgo::kMSA, MaskedAlgo::kHash, MaskedAlgo::kHeap}) {
    for (auto kind : {MaskKind::kMask, MaskKind::kComplement}) {
      MaskedOptions o;
      o.algo = algo;
      o.kind = kind;
      const auto want = masked_spgemm<SR>(a, a, m, o);
      EXPECT_TRUE(exec.submit(a, a, m, o).get() == want)
          << to_string(algo) << "/" << to_string(kind);
    }
  }
  EXPECT_EQ(exec.stats().cache.misses, 6u);
}

TEST(BatchExecutor, ErrorsSurfaceAtFutureGet) {
  Exec exec;
  const auto a = erdos_renyi<IT, VT>(50, 50, 4, 12);
  const auto bad = erdos_renyi<IT, VT>(40, 40, 4, 13);  // dimension mismatch
  auto f = exec.submit(a, bad, a);
  EXPECT_THROW(f.get(), std::invalid_argument);
  // MCA × complement is rejected by the registry.
  MaskedOptions o;
  o.algo = MaskedAlgo::kMCA;
  o.kind = MaskKind::kComplement;
  auto f2 = exec.submit(a, a, a, o);
  EXPECT_THROW(f2.get(), std::invalid_argument);
  exec.wait_idle();
  EXPECT_EQ(exec.stats().completed, 2u);
}

TEST(BatchExecutor, DisabledPlanCachePlansEveryJob) {
  BatchLimits limits;
  limits.cache_plans = false;
  Exec exec(limits);
  const auto a = erdos_renyi<IT, VT>(80, 80, 5, 14);
  const auto want = masked_spgemm<SR>(a, a, a);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(exec.submit(a, a, a).get() == want);
  EXPECT_EQ(exec.stats().cache.hits, 0u);
}

TEST(Admission, RejectPolicyThrowsWhenPendingJobsAtLimit) {
  BatchLimits limits;
  limits.pool_threads = 1;
  limits.max_pending_jobs = 1;
  limits.admission = AdmissionPolicy::kReject;
  Exec exec(limits);
  const auto a = erdos_renyi<IT, VT>(70, 70, 5, 20);
  const auto want = masked_spgemm<SR>(a, a, a);

  // Park the only pool worker so the first job stays pending.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  exec.pool().submit_detached([opened] { opened.wait(); });

  auto f1 = exec.submit(a, a, a);
  EXPECT_THROW(exec.submit(a, a, a), BatchRejected);
  {
    const auto st = exec.stats();
    EXPECT_EQ(st.rejected, 1u);
    EXPECT_EQ(st.submitted, 1u);  // rejected jobs are not submitted
    EXPECT_EQ(st.pending_jobs, 1u);
    EXPECT_GT(st.pending_bytes, 0u);
  }
  gate.set_value();
  EXPECT_TRUE(f1.get() == want);
  exec.wait_idle();
  // Capacity freed: the executor admits again.
  EXPECT_TRUE(exec.submit(a, a, a).get() == want);
  exec.wait_idle();  // futures settle slightly before the gauges do
  const auto st = exec.stats();
  EXPECT_EQ(st.pending_jobs, 0u);
  EXPECT_EQ(st.pending_bytes, 0u);
}

TEST(Admission, BlockPolicyWaitsForCapacityInsteadOfRejecting) {
  BatchLimits limits;
  limits.pool_threads = 1;
  limits.max_pending_jobs = 1;
  limits.admission = AdmissionPolicy::kBlock;
  Exec exec(limits);
  const auto a = erdos_renyi<IT, VT>(60, 60, 5, 21);
  const auto want = masked_spgemm<SR>(a, a, a);

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  exec.pool().submit_detached([opened] { opened.wait(); });

  auto f1 = exec.submit(a, a, a);
  std::thread submitter([&] {
    // Blocks in admit() until job 1 completes, then runs to completion.
    auto f2 = exec.submit(a, a, a);
    EXPECT_TRUE(f2.get() == want);
  });
  // Wait until the submitter is provably parked at the admission gate.
  while (exec.stats().admission_blocks == 0) std::this_thread::yield();
  EXPECT_EQ(exec.stats().submitted, 1u);

  gate.set_value();
  submitter.join();
  EXPECT_TRUE(f1.get() == want);
  exec.wait_idle();
  const auto st = exec.stats();
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_GE(st.admission_blocks, 1u);
}

TEST(Admission, ByteBoundAdmitsOversizedJobWhenAlone) {
  BatchLimits limits;
  limits.pool_threads = 1;
  limits.max_pending_bytes = 1;  // every job is oversized
  limits.admission = AdmissionPolicy::kReject;
  Exec exec(limits);
  const auto a = erdos_renyi<IT, VT>(80, 80, 5, 22);
  const auto want = masked_spgemm<SR>(a, a, a);

  // Alone -> admitted despite exceeding the byte bound (liveness).
  EXPECT_TRUE(exec.submit(a, a, a).get() == want);
  exec.wait_idle();

  // With one in flight, the byte bound rejects the next.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  exec.pool().submit_detached([opened] { opened.wait(); });
  auto f1 = exec.submit(a, a, a);
  EXPECT_THROW(exec.submit(a, a, a), BatchRejected);
  gate.set_value();
  EXPECT_TRUE(f1.get() == want);
}

TEST(Admission, UnboundedByDefault) {
  Exec exec;
  const auto a = erdos_renyi<IT, VT>(50, 50, 4, 23);
  std::vector<std::future<Mat>> fs;
  for (int i = 0; i < 32; ++i) fs.push_back(exec.submit(a, a, a));
  for (auto& f : fs) f.get();
  const auto st = exec.stats();
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_EQ(st.admission_blocks, 0u);
}

TEST(BatchedBC, MatchesMonolithicBC) {
  const auto graph = symmetrize_pattern(rmat<IT, VT>(7, 77));
  std::vector<IT> sources;
  for (IT q = 0; q < 12; ++q) {
    sources.push_back(static_cast<IT>((q * 37) % graph.nrows()));
  }
  MaskedOptions opts;
  opts.algo = MaskedAlgo::kMSA;
  const auto want = betweenness_centrality(graph, sources, opts);

  BatchExecutor<PlusTimes<double>, IT, double> exec;
  const auto got = betweenness_centrality(graph, sources, exec, 4, opts);
  ASSERT_EQ(got.centrality.size(), want.centrality.size());
  EXPECT_EQ(got.depth, want.depth);
  for (std::size_t v = 0; v < want.centrality.size(); ++v) {
    EXPECT_DOUBLE_EQ(got.centrality[v], want.centrality[v]) << v;
  }
}

TEST(BatchedBFS, MatchesMonolithicBFS) {
  const auto graph = rmat<IT, VT>(8, 99);
  std::vector<IT> sources;
  for (IT q = 0; q < 10; ++q) {
    sources.push_back(static_cast<IT>((q * 53 + 5) % graph.nrows()));
  }
  MaskedOptions opts;
  opts.algo = MaskedAlgo::kHash;
  const auto want = multi_source_bfs(graph, sources, opts);

  BatchExecutor<PlusPair<std::int64_t>, IT, std::int64_t> exec;
  const auto got = multi_source_bfs(graph, sources, exec, 3, opts);
  EXPECT_EQ(got.depth, want.depth);
  EXPECT_EQ(got.levels, want.levels);
}

// --- priority queue (ISSUE 5 satellite: executor priorities) ---------------

TEST(PriorityQueue, InteractiveJobsPopBeforeBatchJobs) {
  // One parked worker, five queued small jobs: the two interactive submits
  // must execute before the three batch submits, FIFO within each level.
  BatchLimits limits;
  limits.pool_threads = 1;
  Exec exec(limits);
  const auto a = erdos_renyi<IT, VT>(50, 50, 5, 31);

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  exec.pool().submit_detached([opened] { opened.wait(); });

  std::mutex order_mu;
  std::vector<int> order;
  auto tagged = [&](int tag, Priority prio) {
    JobOptions job;
    job.priority = prio;
    job.on_complete = [&, tag] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
    };
    return exec.submit(a, a, a, MaskedOptions{}, std::move(job));
  };

  std::vector<std::future<Mat>> futures;
  futures.push_back(tagged(100, Priority::kBatch));
  futures.push_back(tagged(101, Priority::kBatch));
  futures.push_back(tagged(1, Priority::kInteractive));
  futures.push_back(tagged(102, Priority::kBatch));
  futures.push_back(tagged(2, Priority::kInteractive));

  gate.set_value();
  for (auto& f : futures) f.get();
  exec.wait_idle();

  const std::vector<int> want{1, 2, 100, 101, 102};
  EXPECT_EQ(order, want);
  EXPECT_EQ(exec.stats().interactive_jobs, 2u);
}

TEST(PriorityQueue, WideLaneAlsoPrefersInteractive) {
  // Force every job wide (threshold 0 forces small; a tiny positive
  // threshold lands everything in the wide lane). The first job's
  // completion hook blocks the lane on a gate — it runs on the wide thread,
  // which cannot pop the next job until the hook returns — so the jobs
  // queued behind it are ordered deterministically: interactive first.
  BatchLimits limits;
  limits.pool_threads = 1;
  limits.wide_work_threshold = 1e-9;
  Exec exec(limits);
  const auto a = erdos_renyi<IT, VT>(60, 60, 5, 32);
  const auto want_mat = masked_spgemm<SR>(a, a, a);

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::promise<void> parked;
  std::mutex order_mu;
  std::vector<int> order;
  auto tagged = [&](int tag, Priority prio, bool stall) {
    JobOptions job;
    job.priority = prio;
    job.on_complete = [&, tag, stall] {
      if (stall) {
        parked.set_value();  // the lane is provably busy with this job now
        opened.wait();
      }
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
    };
    return exec.submit(a, a, a, MaskedOptions{}, std::move(job));
  };

  std::vector<std::future<Mat>> futures;
  futures.push_back(tagged(0, Priority::kBatch, /*stall=*/true));
  parked.get_future().wait();  // everything below queues BEHIND job 0
  futures.push_back(tagged(100, Priority::kBatch, false));
  futures.push_back(tagged(101, Priority::kBatch, false));
  futures.push_back(tagged(1, Priority::kInteractive, false));
  gate.set_value();
  for (auto& f : futures) {
    EXPECT_TRUE(f.get() == want_mat);
  }
  exec.wait_idle();
  const std::vector<int> want{0, 1, 100, 101};
  EXPECT_EQ(order, want);
  EXPECT_EQ(exec.stats().wide_jobs, 4u);
}
