// ThreadPool: futures, worker identity, the cooperative arena protocol and
// graceful shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"

using namespace msx;

TEST(ThreadPool, RunsSubmittedTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
  EXPECT_GE(pool.tasks_executed(), 64u);
}

TEST(ThreadPool, ExceptionsSurfaceAtFutureGet) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WorkerIndexIsStableAndScoped) {
  ThreadPool pool(3);
  // The submitting thread is not a worker.
  EXPECT_EQ(pool.worker_index(), -1);
  EXPECT_EQ(pool.current_slot(), 0);
  std::mutex mu;
  std::set<int> seen;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&] {
      const int idx = pool.worker_index();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(idx);
    }));
  }
  for (auto& f : futures) f.get();
  for (int idx : seen) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, pool.size());
  }
}

TEST(ThreadPool, ArenaRunCoversAllWorkExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kItems = 1000;
  std::vector<std::atomic<int>> hits(kItems);
  std::atomic<std::int64_t> next{0};
  pool.run([&](int slot) {
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, pool.concurrency());
    for (;;) {
      const auto i = next.fetch_add(1);
      if (i >= kItems) break;
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
  }
}

TEST(ThreadPool, ArenaRunFromInsideAWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  auto f = pool.submit([&] {
    std::atomic<int> count{0};
    std::atomic<std::int64_t> next{0};
    pool.run([&](int) {
      for (;;) {
        if (next.fetch_add(1) >= 100) break;
        count.fetch_add(1);
      }
    });
    return count.load();
  });
  EXPECT_EQ(f.get(), 100);
}

TEST(ThreadPool, ConcurrentRunsNeverShareSlotZero) {
  // Regression: slot 0 belongs to a run's caller. A second caller draining
  // the queue (run()'s help-while-waiting loop) may dequeue a foreign run's
  // helper offer; it must retire it WITHOUT executing the body, or two
  // threads would both operate as slot 0 of the same run.
  ThreadPool pool(1);  // one busy worker maximizes queued offers
  std::atomic<bool> violated{false};
  auto hammer = [&] {
    const auto me = std::this_thread::get_id();
    for (int r = 0; r < 50; ++r) {
      std::atomic<std::int64_t> next{0};
      pool.run([&, me](int slot) {
        if (slot == 0 && std::this_thread::get_id() != me) {
          violated.store(true);
        }
        while (next.fetch_add(1) < 64) {
        }
      });
    }
  };
  std::thread t1(hammer), t2(hammer);
  t1.join();
  t2.join();
  EXPECT_FALSE(violated.load());
}

TEST(ThreadPool, ArenaRunPropagatesBodyExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run([](int) { throw std::runtime_error("arena boom"); }),
      std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::vector<std::future<int>> futures;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      futures.push_back(pool.submit([i] { return i; }));
    }
    // Destructor must finish every queued task before joining.
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
  }
}

TEST(ThreadPool, DefaultSizeMatchesOpenMPDefault) {
  ThreadPool pool;
  EXPECT_EQ(pool.size(), max_threads());
  EXPECT_EQ(pool.concurrency(), pool.size() + 1);
}
