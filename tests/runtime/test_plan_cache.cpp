// PlanCache: fingerprint discrimination, leases, LRU eviction and the
// value-refresh contract.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/masked_spgemm.hpp"
#include "core/plan.hpp"
#include "gen/erdos_renyi.hpp"
#include "runtime/plan_cache.hpp"

using namespace msx;

using IT = int32_t;
using VT = double;
using SR = PlusTimes<VT>;
using Mat = CSRMatrix<IT, VT>;
using Cache = PlanCache<SR, IT, VT>;

namespace {

Mat mat(IT n, IT deg, unsigned seed) {
  return erdos_renyi<IT, VT>(n, n, deg, seed);
}

}  // namespace

TEST(PlanFingerprint, DiscriminatesStructureOptionsAndAliasing) {
  const auto a = mat(60, 5, 1);
  const auto b = mat(60, 5, 2);
  const auto m = mat(60, 6, 3);
  MaskedOptions opts;

  const auto base = plan_fingerprint(a, b, m, opts);
  EXPECT_EQ(base, plan_fingerprint(a, b, m, opts));  // deterministic

  // Different structure.
  const auto a2 = mat(60, 5, 4);
  EXPECT_FALSE(base == plan_fingerprint(a2, b, m, opts));

  // Same structure, different values: SAME key (values are refreshed).
  Mat a_vals = a;
  for (auto& v : a_vals.mutable_values()) v += 1.0;
  EXPECT_EQ(base, plan_fingerprint(a_vals, b, m, opts));

  // Options participate.
  MaskedOptions o2;
  o2.algo = MaskedAlgo::kHash;
  EXPECT_FALSE(base == plan_fingerprint(a, b, m, o2));
  MaskedOptions o3;
  o3.kind = MaskKind::kComplement;
  EXPECT_FALSE(base == plan_fingerprint(a, b, m, o3));

  // Aliasing participates: (a, a, m) with B aliasing A differs from two
  // structurally identical but distinct operands.
  Mat a_copy = a;
  EXPECT_FALSE(plan_fingerprint(a, a, m, opts) ==
               plan_fingerprint(a, a_copy, m, opts));
}

TEST(PlanCache, HitsAfterMissAndComputesCorrectly) {
  Cache cache(8);
  const auto a = mat(80, 6, 11);
  const auto b = mat(80, 6, 12);
  const auto m = mat(80, 8, 13);
  const auto want = masked_spgemm<SR>(a, b, m);

  {
    auto lease = cache.acquire(a, b, m);
    EXPECT_FALSE(lease.reused());
    EXPECT_TRUE(lease.plan().execute() == want);
  }
  {
    auto lease = cache.acquire(a, b, m);
    EXPECT_TRUE(lease.reused());
    EXPECT_TRUE(lease.plan().execute() == want);
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.instances, 1u);
}

TEST(PlanCache, ConcurrentLeasesOfSameKeyGetDistinctInstances) {
  Cache cache(8);
  const auto a = mat(80, 6, 21);
  const auto b = mat(80, 6, 22);
  const auto m = mat(80, 8, 23);

  auto l1 = cache.acquire(a, b, m);
  auto l2 = cache.acquire(a, b, m);  // first is busy -> extra instance
  EXPECT_NE(&l1.plan(), &l2.plan());
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.grows, 1u);
  EXPECT_EQ(st.instances, 2u);
}

TEST(PlanCache, LruEvictsColdEntries) {
  Cache cache(2);
  const auto m = mat(40, 4, 30);
  std::vector<Mat> as;
  for (unsigned s = 0; s < 4; ++s) as.push_back(mat(40, 4, 31 + s));

  for (const auto& a : as) {
    auto lease = cache.acquire(a, a, m);  // 4 distinct keys, capacity 2
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 4u);
  EXPECT_GE(st.evictions, 2u);
  EXPECT_LE(st.instances, 2u);

  // The oldest entry is gone: re-acquiring it is a miss; the newest should
  // still be cached.
  { auto lease = cache.acquire(as[0], as[0], m); }
  { auto lease = cache.acquire(as[3], as[3], m); }
  const auto st2 = cache.stats();
  EXPECT_EQ(st2.misses, 5u);  // as[0] re-planned
  EXPECT_EQ(st2.hits, 1u);    // as[3] still warm
}

TEST(PlanCache, BusyInstancesSurviveEviction) {
  Cache cache(1);
  const auto m = mat(40, 4, 40);
  const auto a1 = mat(40, 4, 41);
  const auto a2 = mat(40, 4, 42);
  const auto want1 = masked_spgemm<SR>(a1, a1, m);

  auto lease = cache.acquire(a1, a1, m);
  {
    // Fills the only capacity slot; a1's entry is LRU but busy, so the
    // cache exceeds capacity instead of invalidating the lease.
    auto other = cache.acquire(a2, a2, m);
  }
  EXPECT_TRUE(lease.plan().execute() == want1);
}

TEST(PlanCache, ValueRefreshOnHitMatchesDirectCall) {
  Cache cache(4);
  const auto a = mat(70, 5, 51);
  const auto b = mat(70, 5, 52);
  const auto m = mat(70, 7, 53);
  { auto lease = cache.acquire(a, b, m); (void)lease.plan().execute(); }

  Mat a2 = a;
  for (auto& v : a2.mutable_values()) v *= 3.0;
  const auto want = masked_spgemm<SR>(a2, b, m);
  auto lease = cache.acquire(a2, b, m);
  ASSERT_TRUE(lease.reused());
  EXPECT_TRUE(lease.plan().execute_values(a2.values(), b.values()) == want);
}

TEST(PlanResidentBytes, CoversOperandCopiesAndCaches) {
  const auto a = mat(200, 6, 71);
  const auto b = mat(200, 6, 72);
  const auto m = mat(200, 8, 73);

  auto plan = masked_plan<SR>(a, b, m);
  // At least the three operand copies must be accounted.
  EXPECT_GE(plan.resident_bytes(), a.storage_bytes() + b.storage_bytes() +
                                       m.rowptr().size_bytes() +
                                       m.colidx().size_bytes());

  // Aliased operands are stored once, so the plan is smaller.
  auto aliased = masked_plan<SR>(a, a, a);
  EXPECT_LT(aliased.resident_bytes(), plan.resident_bytes());

  // A pull-based plan additionally holds the CSC of B + permutation.
  MaskedOptions inner;
  inner.algo = MaskedAlgo::kInner;
  auto pulled = masked_plan<SR>(a, b, m, inner);
  EXPECT_TRUE(pulled.caches_csc());
  EXPECT_GT(pulled.resident_bytes(), plan.resident_bytes());
}

TEST(PlanCacheByteBudget, EvictsLruUntilUnderBudget) {
  // Budget sized to hold roughly two of the four plans.
  const auto m = mat(300, 6, 80);
  std::vector<Mat> as;
  for (unsigned s = 0; s < 4; ++s) as.push_back(mat(300, 6, 81 + s));

  std::size_t one_plan_bytes = 0;
  {
    auto probe = masked_plan<SR>(as[0], as[0], m);
    one_plan_bytes = probe.resident_bytes();
  }

  Cache cache(/*capacity=*/16, /*byte_budget=*/2 * one_plan_bytes +
                                   one_plan_bytes / 2);
  for (const auto& a : as) {
    auto lease = cache.acquire(a, a, m);
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 4u);
  // Entry capacity (16) never binds; the byte budget forced evictions.
  EXPECT_GE(st.evictions, 1u);
  EXPECT_LE(st.bytes_held, cache.byte_budget());
  EXPECT_LT(st.instances, 4u);

  // MRU survives, LRU was evicted.
  { auto lease = cache.acquire(as[3], as[3], m); }
  { auto lease = cache.acquire(as[0], as[0], m); }
  const auto st2 = cache.stats();
  EXPECT_EQ(st2.hits, 1u);    // as[3] still resident
  EXPECT_EQ(st2.misses, 5u);  // as[0] had been evicted
}

TEST(PlanCacheByteBudget, ZeroBudgetMeansUnlimited) {
  Cache cache(8);  // default: entry-count LRU only
  const auto m = mat(100, 5, 90);
  std::vector<Mat> as;
  for (unsigned s = 0; s < 6; ++s) as.push_back(mat(100, 5, 91 + s));
  for (const auto& a : as) {
    auto lease = cache.acquire(a, a, m);
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.evictions, 0u);  // under entry capacity, bytes unconstrained
  EXPECT_GT(st.bytes_held, 0u);

  cache.clear();
  EXPECT_EQ(cache.stats().bytes_held, 0u);
  EXPECT_EQ(cache.stats().instances, 0u);
}

TEST(PlanCacheByteBudget, LeaseReleaseRefreshesLazilyBuiltBytes) {
  // The two-phase symbolic rowptr is built by the first execute(), after
  // the insert-time measurement; handing the lease back must re-account.
  Cache cache(8);
  const auto a = mat(150, 6, 99);
  const auto m = mat(150, 7, 100);
  MaskedOptions opts;
  opts.algo = MaskedAlgo::kHash;
  opts.phases = PhaseMode::kTwoPhase;

  std::uint64_t at_insert = 0;
  {
    auto lease = cache.acquire(a, a, m, opts);
    at_insert = cache.stats().bytes_held;
    EXPECT_GT(at_insert, 0u);
    (void)lease.plan().execute();
  }
  EXPECT_GT(cache.stats().bytes_held, at_insert);
}

TEST(PlanCacheByteBudget, BusyInstancesAreNotEvictedByBytes) {
  const auto m = mat(200, 6, 95);
  const auto a1 = mat(200, 6, 96);
  const auto a2 = mat(200, 6, 97);
  // Budget below a single plan: every insert is over budget immediately.
  Cache cache(8, /*byte_budget=*/1);
  auto lease = cache.acquire(a1, a1, m);
  {
    auto other = cache.acquire(a2, a2, m);
    // Both leased: nothing evictable, the cache exceeds its budget softly.
    EXPECT_EQ(cache.stats().instances, 2u);
  }
  // a2's lease returned; the next insert can evict it, but never the busy a1.
  const auto a3 = mat(200, 6, 98);
  { auto third = cache.acquire(a3, a3, m); }
  const auto want1 = masked_spgemm<SR>(a1, a1, m);
  EXPECT_TRUE(lease.plan().execute() == want1);
}

TEST(PlanCache, ParallelAcquireIsSafe) {
  Cache cache(16);
  const auto a = mat(60, 5, 61);
  const auto b = mat(60, 5, 62);
  const auto m = mat(60, 6, 63);
  const auto want = masked_spgemm<SR>(a, b, m);

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < 20; ++r) {
        auto lease = cache.acquire(a, b, m);
        auto got = lease.reused()
                       ? lease.plan().execute_values(a.values(), b.values(),
                                                     ExecContext::serial())
                       : lease.plan().execute(ExecContext::serial());
        if (!(got == want)) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const auto st = cache.stats();
  EXPECT_EQ(st.hits + st.misses + st.grows, 80u);
}
