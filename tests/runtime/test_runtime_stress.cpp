// Runtime stress: hundreds of mixed-size submits through the BatchExecutor,
// every result bit-identical to a direct masked_spgemm call (ISSUE 3
// satellite). This is the suite the CI TSan job runs with OMP_NUM_THREADS=1:
// all runtime concurrency is std::thread/mutex/atomic-based and fully
// modeled by ThreadSanitizer.
#include <gtest/gtest.h>

#include <cstddef>
#include <future>
#include <utility>
#include <vector>

#include "core/masked_spgemm.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "runtime/batch.hpp"

using namespace msx;

using IT = int32_t;
using VT = double;
using SR = PlusTimes<VT>;
using Mat = CSRMatrix<IT, VT>;

namespace {

struct Request {
  Mat a, b, m;
  MaskedOptions opts;
  Mat want;
};

// A mixed workload: tiny through mid-size structures, several algorithm
// families, both mask kinds, skewed and uniform degree distributions.
std::vector<Request> make_requests() {
  std::vector<Request> reqs;
  const MaskedAlgo algos[] = {MaskedAlgo::kMSA, MaskedAlgo::kHash,
                              MaskedAlgo::kHeap, MaskedAlgo::kAuto};
  const IT sizes[] = {24, 64, 150, 400, 900};
  unsigned seed = 1;
  for (IT n : sizes) {
    for (MaskedAlgo algo : algos) {
      for (MaskKind kind : {MaskKind::kMask, MaskKind::kComplement}) {
        Request r;
        r.a = erdos_renyi<IT, VT>(n, n, 5, seed++);
        r.b = erdos_renyi<IT, VT>(n, n, 5, seed++);
        r.m = erdos_renyi<IT, VT>(n, n, 6, seed++);
        r.opts.algo = algo;
        r.opts.kind = kind;
        r.want = masked_spgemm<SR>(r.a, r.b, r.m, r.opts);
        reqs.push_back(std::move(r));
      }
    }
  }
  // One skewed structure large enough for the wide lane under the default
  // threshold.
  {
    Request r;
    r.a = rmat<IT, VT>(10, 7);
    r.b = rmat<IT, VT>(10, 8);
    r.m = rmat<IT, VT>(10, 9);
    r.want = masked_spgemm<SR>(r.a, r.b, r.m, r.opts);
    reqs.push_back(std::move(r));
  }
  return reqs;
}

}  // namespace

TEST(RuntimeStress, HundredsOfMixedSubmitsAreBitIdentical) {
  const auto requests = make_requests();
  BatchLimits limits;
  limits.pool_threads = 8;
  limits.plan_cache_capacity = 24;  // below the key count: exercises LRU
  limits.wide_work_threshold = 2e4;  // pushes the mid-size jobs wide too
  BatchExecutor<SR, IT, VT> exec(limits);

  // Several rounds over every request, interleaved, all in flight at once.
  std::vector<std::pair<std::size_t, std::future<Mat>>> inflight;
  for (int round = 0; round < 8; ++round) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto& r = requests[i];
      inflight.emplace_back(i, exec.submit(r.a, r.b, r.m, r.opts));
    }
  }
  ASSERT_GE(inflight.size(), 300u);

  std::size_t mismatches = 0;
  for (auto& [i, fut] : inflight) {
    if (!(fut.get() == requests[i].want)) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u);

  // future.get() returns when the result is ready; the executor's own
  // bookkeeping settles at wait_idle().
  exec.wait_idle();
  const auto st = exec.stats();
  EXPECT_EQ(st.submitted, inflight.size());
  EXPECT_EQ(st.completed, inflight.size());
  EXPECT_GT(st.small_jobs, 0u);
  EXPECT_GT(st.wide_jobs, 0u);
  EXPECT_GT(st.cache.hits, 0u);
}

TEST(RuntimeStress, ValueChurnOnRecurringStructure) {
  // Same structures resubmitted with changing values — the plan-cache
  // value-refresh path under concurrency.
  const auto b = erdos_renyi<IT, VT>(200, 200, 6, 101);
  const auto m = erdos_renyi<IT, VT>(200, 200, 7, 102);
  Mat a = erdos_renyi<IT, VT>(200, 200, 6, 103);

  BatchLimits limits;
  limits.pool_threads = 4;
  BatchExecutor<SR, IT, VT> exec(limits);

  for (int round = 0; round < 8; ++round) {
    auto vals = a.mutable_values();
    for (std::size_t p = 0; p < vals.size(); ++p) {
      vals[p] = static_cast<double>((p + static_cast<std::size_t>(round)) % 9) + 0.5;
    }
    const auto want = masked_spgemm<SR>(a, b, m);
    std::vector<std::future<Mat>> burst;
    for (int j = 0; j < 12; ++j) burst.push_back(exec.submit(a, b, m));
    for (auto& f : burst) EXPECT_TRUE(f.get() == want) << round;
  }
  EXPECT_GT(exec.stats().cache.hits, 0u);
}

TEST(RuntimeStress, SharedWarmPlanSupportsConcurrentExecute) {
  // A single warmed plan executed concurrently: the kernel leases a
  // workspace pool per run, so accumulators are never shared.
  const auto a = erdos_renyi<IT, VT>(300, 300, 7, 111);
  const auto m = erdos_renyi<IT, VT>(300, 300, 8, 112);
  auto plan = masked_plan<SR>(a, a, m);
  const auto want = plan.execute();  // warms symbolic + partition caches

  ThreadPool pool(6);
  std::vector<std::future<bool>> futures;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(pool.submit(
        [&] { return plan.execute(ExecContext::serial()) == want; }));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get());
}
