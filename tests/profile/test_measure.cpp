#include "profile/measure.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace msx {
namespace {

TEST(Measure, RunsWarmupPlusReps) {
  std::atomic<int> calls{0};
  MeasureConfig cfg;
  cfg.warmup = 2;
  cfg.reps = 3;
  auto stats = measure([&] { calls.fetch_add(1); }, cfg);
  EXPECT_EQ(calls.load(), 5);
  EXPECT_EQ(stats.n, 3u);
}

TEST(Measure, MinSecondsExtendsSampling) {
  std::atomic<int> calls{0};
  MeasureConfig cfg;
  cfg.warmup = 0;
  cfg.reps = 1;
  cfg.min_seconds = 0.05;
  auto stats = measure(
      [&] {
        calls.fetch_add(1);
        volatile double x = 0;
        for (int i = 0; i < 100000; ++i) x += i;
      },
      cfg);
  EXPECT_GE(stats.n, 1u);
  double total = stats.mean * static_cast<double>(stats.n);
  EXPECT_GE(total, 0.045);
}

TEST(Measure, StatsArePositive) {
  auto stats = measure([] {
    volatile double x = 0;
    for (int i = 0; i < 10000; ++i) x += i;
  });
  EXPECT_GT(stats.min, 0.0);
  EXPECT_GE(stats.max, stats.min);
  EXPECT_GE(stats.mean, stats.min);
  EXPECT_EQ(best_seconds(stats), stats.min);
}

}  // namespace
}  // namespace msx
