#include "profile/perf_profile.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace msx {
namespace {

TEST(PerfProfile, SingleSchemeWinsEverywhere) {
  ProfileInput in;
  in.schemes = {"fast", "slow"};
  in.cases = {"c1", "c2"};
  in.seconds = {{1.0, 2.0}, {2.0, 4.0}};
  auto series = performance_profiles(in);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(win_fraction(series[0]), 1.0);
  EXPECT_DOUBLE_EQ(win_fraction(series[1]), 0.0);
  // slow is within 2x on all cases.
  EXPECT_DOUBLE_EQ(series[1].y.back(), 1.0);
  EXPECT_DOUBLE_EQ(series[1].x.back(), 2.0);
}

TEST(PerfProfile, SplitWins) {
  ProfileInput in;
  in.schemes = {"a", "b"};
  in.cases = {"c1", "c2"};
  in.seconds = {{1.0, 3.0}, {2.0, 1.0}};
  auto series = performance_profiles(in);
  EXPECT_DOUBLE_EQ(win_fraction(series[0]), 0.5);
  EXPECT_DOUBLE_EQ(win_fraction(series[1]), 0.5);
}

TEST(PerfProfile, MissingRunsExcluded) {
  ProfileInput in;
  in.schemes = {"a", "partial"};
  in.cases = {"c1", "c2"};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  in.seconds = {{1.0, 1.0}, {1.0, nan}};
  auto series = performance_profiles(in);
  // partial ties on c1 (ratio 1.0) and never reaches c2.
  EXPECT_DOUBLE_EQ(series[1].y.back(), 0.5);
}

TEST(PerfProfile, RatiosBeyondCapDropped) {
  ProfileInput in;
  in.schemes = {"a", "verybad"};
  in.cases = {"c1"};
  in.seconds = {{1.0}, {100.0}};
  auto series = performance_profiles(in, /*x_max=*/3.0);
  EXPECT_TRUE(series[1].x.empty());
}

TEST(PerfProfile, TiesCountForBoth) {
  ProfileInput in;
  in.schemes = {"a", "b"};
  in.cases = {"c1"};
  in.seconds = {{1.0}, {1.0}};
  auto series = performance_profiles(in);
  EXPECT_DOUBLE_EQ(win_fraction(series[0]), 1.0);
  EXPECT_DOUBLE_EQ(win_fraction(series[1]), 1.0);
}

TEST(PerfProfile, MonotoneNonDecreasingY) {
  ProfileInput in;
  in.schemes = {"a", "b", "c"};
  in.cases = {"c1", "c2", "c3", "c4"};
  in.seconds = {{1, 2, 3, 4}, {4, 3, 2, 1}, {2, 2, 2, 2}};
  for (const auto& s : performance_profiles(in)) {
    for (std::size_t k = 1; k < s.y.size(); ++k) {
      EXPECT_GE(s.y[k], s.y[k - 1]);
      EXPECT_GE(s.x[k], s.x[k - 1]);
    }
  }
}

TEST(PerfProfile, PrintersDoNotCrash) {
  ProfileInput in;
  in.schemes = {"a", "b"};
  in.cases = {"c1", "c2"};
  in.seconds = {{1.0, 2.0}, {2.0, 1.0}};
  auto series = performance_profiles(in);
  print_profiles_csv(series);
  print_profiles_ascii(series);
}

}  // namespace
}  // namespace msx
