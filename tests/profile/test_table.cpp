#include "profile/table.hpp"

#include <gtest/gtest.h>

namespace msx {
namespace {

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 3), "1.235");
  EXPECT_EQ(Table::num(2.0, 1), "2.0");
  EXPECT_EQ(Table::num(0.0, 2), "0.00");
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});  // padded to 3 cells
  t.print();         // must not crash
  t.print_csv();
}

TEST(Table, PrintsWithoutCrashing) {
  Table t({"scheme", "seconds", "gflops"});
  t.add_row({"MSA-1P", "0.123", "4.56"});
  t.add_row({"Hash-1P", "0.223", "2.51"});
  t.print();
  t.print_csv();
}

}  // namespace
}  // namespace msx
