// Metrics registry: log2-bucket histogram math at the bucket boundaries,
// quantiles, Prometheus rendering, label merging, disabled mode, and
// registry concurrency (runs under TSan via the obs_ ctest regex)
// (ISSUE 9 tentpole).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

using namespace msx::obs;

namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { set_metrics_enabled(true); }
  void TearDown() override { set_metrics_enabled(true); }
};

}  // namespace

TEST_F(MetricsTest, HistogramBucketBoundaries) {
  Histogram h;
  h.observe_ns(0);  // bucket 0: zeros
  h.observe_ns(1);  // bucket 1: [1, 1]
  h.observe_ns(2);  // bucket 2: [2, 3]
  h.observe_ns(3);
  h.observe_ns(4);     // bucket 3: [4, 7]
  h.observe_ns(1023);  // bucket 10: [512, 1023]
  h.observe_ns(1024);  // bucket 11: [1024, 2047]
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.bucket_count(10), 1u);
  EXPECT_EQ(h.bucket_count(11), 1u);
  EXPECT_EQ(h.count(), 7u);

  // Inclusive upper bounds: 2^b - 1, saturating at the top bucket.
  EXPECT_EQ(Histogram::bucket_upper_ns(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_ns(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper_ns(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper_ns(10), 1023u);
  EXPECT_EQ(Histogram::bucket_upper_ns(64), ~0ull);

  // The all-ones input lands in the top bucket, not out of range.
  Histogram top;
  top.observe_ns(~0ull);
  EXPECT_EQ(top.bucket_count(64), 1u);
}

TEST_F(MetricsTest, HistogramQuantiles) {
  Histogram h;
  // 99 fast observations (~1us) and one slow (~1ms).
  for (int i = 0; i < 99; ++i) h.observe_ns(1000);
  h.observe_ns(1'000'000);
  // bit_width(1000) = 10 -> upper bound 1023ns.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 1023e-9);
  // rank ceil(0.99 * 100) = 99: still the fast bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 1023e-9);
  // The max lands in bucket bit_width(1e6) = 20 -> upper 2^20 - 1.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), (double)((1u << 20) - 1) * 1e-9);
  EXPECT_NEAR(h.sum_seconds(), 99 * 1000e-9 + 1e-3, 1e-12);

  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST_F(MetricsTest, DisabledModeSkipsObservation) {
  set_metrics_enabled(false);
  EXPECT_FALSE(metrics_enabled());
  Histogram h;
  h.observe_ns(1000);
  h.observe_seconds(0.5);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum_seconds(), 0.0);
  set_metrics_enabled(true);
  h.observe_ns(1000);
  EXPECT_EQ(h.count(), 1u);
}

TEST_F(MetricsTest, RegistryInternsByNameAndLabels) {
  Registry reg;
  Counter* c1 = reg.counter("msx_test_total");
  Counter* c2 = reg.counter("msx_test_total");
  EXPECT_EQ(c1, c2);  // same (name, labels) -> same handle
  Counter* c3 = reg.counter("msx_test_total", "shard=\"s1\"");
  EXPECT_NE(c1, c3);  // distinct label set -> distinct series
  EXPECT_EQ(reg.find_histogram("absent"), nullptr);
  Histogram* h = reg.histogram("msx_test_seconds");
  EXPECT_EQ(reg.find_histogram("msx_test_seconds"), h);
}

TEST_F(MetricsTest, PrometheusRendering) {
  Registry reg;
  reg.counter("msx_requests_total")->inc(41);
  reg.counter("msx_requests_total")->inc();
  reg.gauge("msx_pending")->set(3.5);
  Histogram* h = reg.histogram("msx_latency_seconds");
  for (int i = 0; i < 10; ++i) h->observe_ns(1000);

  const std::string text = reg.render();
  EXPECT_NE(text.find("# TYPE msx_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("msx_requests_total 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE msx_pending gauge"), std::string::npos);
  EXPECT_NE(text.find("msx_pending 3.5"), std::string::npos);
  // Histograms render as summaries: three quantiles plus _sum/_count.
  EXPECT_NE(text.find("# TYPE msx_latency_seconds summary"),
            std::string::npos);
  EXPECT_NE(text.find("msx_latency_seconds{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("msx_latency_seconds{quantile=\"0.95\"}"),
            std::string::npos);
  EXPECT_NE(text.find("msx_latency_seconds{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("msx_latency_seconds_count 10"), std::string::npos);
  EXPECT_NE(text.find("msx_latency_seconds_sum"), std::string::npos);

  // extra_labels merges into every sample — the shard name stamp.
  const std::string labeled = reg.render("shard=\"s0\"");
  EXPECT_NE(labeled.find("msx_requests_total{shard=\"s0\"} 42"),
            std::string::npos);
  EXPECT_NE(labeled.find("{shard=\"s0\",quantile=\"0.5\"}"),
            std::string::npos);
}

TEST_F(MetricsTest, ConcurrentObservationIsRaceFree) {
  Registry reg;
  constexpr int kThreads = 4;
  constexpr int kOps = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Interleave lookups and observations: lookup interning is under the
      // registry mutex, instruments are atomics.
      Counter* c = reg.counter("msx_conc_total");
      Histogram* h = reg.histogram("msx_conc_seconds");
      Gauge* g = reg.gauge("msx_conc_gauge");
      for (int i = 0; i < kOps; ++i) {
        c->inc();
        h->observe_ns(static_cast<std::uint64_t>(i * (t + 1)));
        if ((i & 1023) == 0) g->set(static_cast<double>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("msx_conc_total")->value(),
            static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(reg.histogram("msx_conc_seconds")->count(),
            static_cast<std::uint64_t>(kThreads) * kOps);
  // Render while nothing is mutating: just exercises the snapshot path.
  EXPECT_FALSE(reg.render().empty());
}

TEST_F(MetricsTest, GlobalRegistryIsOneInstance) {
  Registry& a = Registry::global();
  Registry& b = Registry::global();
  EXPECT_EQ(&a, &b);
}
