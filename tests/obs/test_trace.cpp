// Request tracing: span recording, parent/child nesting (same-thread via
// ScopedSpan, cross-thread via explicit contexts), Chrome trace export and
// disabled-mode no-ops (ISSUE 9 tentpole).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

using namespace msx::obs;

namespace {

// Every test owns the global enable flag and the span rings.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_trace_enabled(true);
    clear_spans();
  }
  void TearDown() override {
    set_trace_enabled(false);
    set_slow_threshold_ns(0);
    clear_spans();
  }
};

const SpanRecord* find_span(const std::vector<SpanRecord>& spans,
                            const std::string& name) {
  for (const auto& s : spans) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

}  // namespace

TEST_F(TraceTest, MintedIdsAreUniqueAndValid) {
  const TraceId a = mint_trace_id();
  const TraceId b = mint_trace_id();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(a == b);
  EXPECT_NE(next_span_id(), next_span_id());
  EXPECT_EQ(trace_hex(a).size(), 32u);
}

TEST_F(TraceTest, ScopedSpanNestsUnderAmbientContext) {
  const TraceId trace = mint_trace_id();
  const std::uint64_t root = next_span_id();
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    ScopedTraceContext ctx({trace, root, "test"});
    ScopedSpan outer("outer");
    ASSERT_TRUE(outer.active());
    outer_id = outer.span_id();
    {
      ScopedSpan inner("inner");
      ASSERT_TRUE(inner.active());
      inner_id = inner.span_id();
    }
  }
  const auto spans = collect_spans();
  const SpanRecord* outer_rec = find_span(spans, "outer");
  const SpanRecord* inner_rec = find_span(spans, "inner");
  ASSERT_NE(outer_rec, nullptr);
  ASSERT_NE(inner_rec, nullptr);
  EXPECT_TRUE(outer_rec->trace == trace);
  EXPECT_TRUE(inner_rec->trace == trace);
  EXPECT_EQ(outer_rec->span_id, outer_id);
  EXPECT_EQ(outer_rec->parent_id, root);
  EXPECT_EQ(inner_rec->parent_id, outer_id);
  EXPECT_EQ(std::string(outer_rec->component), "test");
  // The inner span finished first and within the outer's window.
  EXPECT_GE(inner_rec->start_ns, outer_rec->start_ns);
  EXPECT_LE(inner_rec->start_ns + inner_rec->dur_ns,
            outer_rec->start_ns + outer_rec->dur_ns);
}

TEST_F(TraceTest, CrossThreadSpansShareOneTrace) {
  const TraceId trace = mint_trace_id();
  const std::uint64_t root = next_span_id();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, root] {
      ScopedTraceContext ctx({trace, root, "worker"});
      ScopedSpan span("work");
    });
  }
  for (auto& t : threads) t.join();

  const auto spans = collect_spans();
  int matched = 0;
  std::vector<std::uint32_t> tids;
  for (const auto& s : spans) {
    if (std::string(s.name) != "work") continue;
    ++matched;
    EXPECT_TRUE(s.trace == trace);
    EXPECT_EQ(s.parent_id, root);
    tids.push_back(s.tid);
  }
  EXPECT_EQ(matched, kThreads);
  // Each thread records into its own ring under its own ordinal.
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()) - tids.begin(), kThreads);
}

TEST_F(TraceTest, RecordSpanHonorsExplicitIds) {
  const TraceId trace = mint_trace_id();
  record_span("manual", trace, 101, 100, 5000, 250, "compX");
  const auto spans = collect_spans();
  const SpanRecord* rec = find_span(spans, "manual");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->span_id, 101u);
  EXPECT_EQ(rec->parent_id, 100u);
  EXPECT_EQ(rec->start_ns, 5000u);
  EXPECT_EQ(rec->dur_ns, 250u);
  EXPECT_EQ(std::string(rec->component), "compX");
}

TEST_F(TraceTest, ChromeTraceJsonMergesComponents) {
  const TraceId trace = mint_trace_id();
  record_span("client.submit", trace, 2, 0, 1000, 900, "client");
  record_span("shard.request", trace, 3, 2, 1200, 500, "s0");
  const auto spans = collect_spans();
  const std::string json = chrome_trace_json(spans);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("client.submit"), std::string::npos);
  EXPECT_NE(json.find("shard.request"), std::string::npos);
  // One process per component, named for Perfetto's track grouping.
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find(trace_hex(trace)), std::string::npos);

  const std::string path = testing::TempDir() + "msx_trace_test.json";
  ASSERT_TRUE(write_chrome_trace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  EXPECT_GT(std::ftell(f), 0);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST_F(TraceTest, DisabledModeRecordsNothing) {
  set_trace_enabled(false);
  EXPECT_FALSE(trace_enabled());
  {
    ScopedTraceContext ctx({mint_trace_id(), 1, "test"});
    ScopedSpan span("ghost");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.span_id(), 0u);
  }
  record_span("ghost2", mint_trace_id(), 1, 0, 0, 1);
  EXPECT_TRUE(collect_spans().empty());
}

TEST_F(TraceTest, ClearSpansEmptiesTheRings) {
  record_span("gone", mint_trace_id(), 1, 0, 0, 1);
  EXPECT_FALSE(collect_spans().empty());
  clear_spans();
  EXPECT_TRUE(collect_spans().empty());
}

TEST_F(TraceTest, SlowLogThresholdGates) {
  // Below the threshold: silent; above: dumps the tree (we only assert it
  // doesn't crash and the threshold knob round-trips).
  set_slow_threshold_ns(1'000'000);
  EXPECT_EQ(slow_threshold_ns(), 1'000'000u);
  const TraceId trace = mint_trace_id();
  record_span("req", trace, 2, 0, 0, 2'000'000, "client");
  maybe_log_slow(trace, 500'000);    // below: no-op
  maybe_log_slow(trace, 2'000'000);  // above: logs to stderr
}
