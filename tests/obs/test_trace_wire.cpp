// Wire v5 observability fields: trace-context propagation in submit frames,
// the queue/run latency split in responses, the metrics-text op, and clean
// versioned rejection of pre-v5 peers (ISSUE 9 tentpole).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "gen/erdos_renyi.hpp"
#include "obs/metrics.hpp"
#include "service/router.hpp"
#include "service/shard.hpp"
#include "service/wire.hpp"

using namespace msx;
using namespace msx::service;

using IT = int32_t;
using VT = double;
using Mat = CSRMatrix<IT, VT>;

TEST(WireTrace, SubmitTraceContextRoundTrips) {
  const auto a = erdos_renyi<IT, VT>(24, 24, 4, 3);
  GatherPayload g;
  encode_submit_parts<IT, VT>(g, 7, 2, kSubMRegistered | kSubTraced, &a,
                              nullptr, MaskedOptions{}, 0, 0,
                              0x1122334455667788ull, 0x99aabbccddeeff00ull,
                              42);
  const auto sub = decode_submit<IT, VT>(g.flatten());
  EXPECT_TRUE(sub.traced);
  EXPECT_EQ(sub.trace_hi, 0x1122334455667788ull);
  EXPECT_EQ(sub.trace_lo, 0x99aabbccddeeff00ull);
  EXPECT_EQ(sub.trace_parent, 42u);
  EXPECT_TRUE(sub.a_storage == a);
}

TEST(WireTrace, UntracedSubmitCarriesNoTraceBytes) {
  GatherPayload g;
  encode_submit_parts<IT, VT>(g, 9, 1, kSubAIsB | kSubMIsA, nullptr, nullptr,
                              MaskedOptions{});
  GatherPayload t;
  encode_submit_parts<IT, VT>(t, 9, 1, kSubAIsB | kSubMIsA | kSubTraced,
                              nullptr, nullptr, MaskedOptions{}, 0, 0, 1, 2,
                              3);
  // The trace triple is exactly 24 bytes and present only under the flag.
  EXPECT_EQ(t.total_bytes(), g.total_bytes() + 24);
  const auto sub = decode_submit<IT, VT>(g.flatten());
  EXPECT_FALSE(sub.traced);
  EXPECT_EQ(sub.trace_hi, 0u);
  EXPECT_EQ(sub.trace_lo, 0u);
}

TEST(WireTrace, TraceComposesWithMaskRowWindow) {
  // kSubMaskRows and kSubTraced together: the window precedes the triple.
  GatherPayload g;
  const auto a = erdos_renyi<IT, VT>(8, 32, 3, 5);
  encode_submit_parts<IT, VT>(g, 3, 4,
                              kSubMRegistered | kSubMaskRows | kSubTraced, &a,
                              nullptr, MaskedOptions{}, 16, 24, 111, 222,
                              333);
  const auto sub = decode_submit<IT, VT>(g.flatten());
  EXPECT_TRUE(sub.mask_rows);
  EXPECT_EQ(sub.mask_r0, 16u);
  EXPECT_EQ(sub.mask_r1, 24u);
  EXPECT_TRUE(sub.traced);
  EXPECT_EQ(sub.trace_hi, 111u);
  EXPECT_EQ(sub.trace_lo, 222u);
  EXPECT_EQ(sub.trace_parent, 333u);
}

TEST(WireTrace, ResponseQueueRunSplitRoundTrips) {
  const auto c = erdos_renyi<IT, VT>(20, 20, 4, 9);
  GatherPayload g;
  encode_response_parts(g, c, /*exec_nanos=*/5000, /*queue_nanos=*/1200,
                        /*run_nanos=*/3600);
  const auto flat = g.flatten();
  const auto resp = decode_response<IT, VT>(flat);
  EXPECT_EQ(resp.status, WireStatus::kOk);
  EXPECT_EQ(resp.exec_nanos, 5000u);
  EXPECT_EQ(resp.queue_nanos, 1200u);
  EXPECT_EQ(resp.run_nanos, 3600u);
  EXPECT_TRUE(resp.result == c);
  // The zero-copy view decode reads the same fields.
  const auto view = decode_response_view<IT, VT>(flat);
  EXPECT_EQ(view.exec_nanos, 5000u);
  EXPECT_EQ(view.queue_nanos, 1200u);
  EXPECT_EQ(view.run_nanos, 3600u);
}

TEST(WireTrace, ErrorResponseSplitsAreZero) {
  const auto err = decode_response<IT, VT>(
      encode_error_response(WireStatus::kOverloaded, "queue full", 777));
  EXPECT_EQ(err.status, WireStatus::kOverloaded);
  EXPECT_EQ(err.exec_nanos, 777u);
  EXPECT_EQ(err.queue_nanos, 0u);
  EXPECT_EQ(err.run_nanos, 0u);
  EXPECT_EQ(err.message, "queue full");
}

TEST(WireTrace, MetricsTextRoundTrips) {
  const std::string page =
      "# TYPE msx_shard_requests_total counter\n"
      "msx_shard_requests_total{shard=\"s0\"} 12\n";
  EXPECT_EQ(decode_metrics_text(encode_metrics_text(page)), page);
  EXPECT_EQ(decode_metrics_text(encode_metrics_text("")), "");
  auto bytes = encode_metrics_text(page);
  bytes.push_back(0xFF);  // trailing garbage is a protocol violation
  EXPECT_THROW(decode_metrics_text(bytes), WireError);
}

TEST(WireTrace, PreV5PeerIsRejectedWithVersionedError) {
  // A v4 peer's frame: identical 32-byte header layout, version field 4.
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  auto header = encode_frame_header(MessageType::kSubmitRequest, 1234,
                                    payload);
  const std::uint16_t old_version = 4;
  std::memcpy(header.data() + 4, &old_version, sizeof old_version);
  try {
    decode_frame_header(header);
    FAIL() << "v4 frame accepted";
  } catch (const WireVersionError& e) {
    // The versioned-error path: the server can answer the old peer on the
    // right request id instead of dropping the connection silently.
    EXPECT_EQ(e.peer_version(), old_version);
    EXPECT_EQ(e.request_id(), 1234u);
  }
}

TEST(WireTrace, LiveShardServesPrometheusPage) {
  // End-to-end kMetricsRequest: serve a few products, then scrape the
  // shard's page via the router's probe and check the latency summary.
  msx::obs::set_metrics_enabled(true);
  using SR = PlusTimes<VT>;
  ShardConfig cfg;
  cfg.name = "m0";
  ServiceShard<SR, IT, VT> shard(cfg);
  auto listener = std::make_unique<LoopbackListener>();
  auto* raw = listener.get();
  shard.serve(std::move(listener));

  const auto a = erdos_renyi<IT, VT>(60, 60, 5, 21);
  const auto m = erdos_renyi<IT, VT>(60, 60, 6, 22);
  constexpr int kRequests = 5;
  {
    auto stream = raw->connect();
    for (int r = 0; r < kRequests; ++r) {
      send_frame(*stream, MessageType::kRequest,
                 static_cast<std::uint64_t>(r),
                 encode_request(a, a, m, MaskedOptions{}));
      FrameHeader h;
      std::vector<std::uint8_t> reply;
      ASSERT_TRUE(recv_frame(*stream, h, reply));
      const auto resp = decode_response<IT, VT>(reply);
      ASSERT_EQ(resp.status, WireStatus::kOk);
      // The v5 split is populated on the live path and nests inside the
      // receipt-to-result time.
      EXPECT_GT(resp.run_nanos, 0u);
      EXPECT_LE(resp.queue_nanos + resp.run_nanos, resp.exec_nanos);
    }
  }

  const ShardEndpoint ep{"m0", [raw] { return raw->connect(); }};
  const auto page = probe_metrics(ep);
  ASSERT_TRUE(page.has_value());
  EXPECT_NE(page->find("# TYPE msx_shard_request_seconds summary"),
            std::string::npos);
  EXPECT_NE(page->find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(page->find("msx_shard_request_seconds_count{shard=\"m0\"} 5"),
            std::string::npos);
  EXPECT_NE(page->find("msx_shard_requests_total{shard=\"m0\"} 5"),
            std::string::npos);
  // The quantiles come from the shard's live histogram: present, ordered
  // and positive (every request took more than a bucket's worth of time).
  const obs::Histogram* h =
      shard.executor().metrics().find_histogram("msx_shard_request_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), static_cast<std::uint64_t>(kRequests));
  EXPECT_GT(h->quantile(0.50), 0.0);
  EXPECT_LE(h->quantile(0.50), h->quantile(0.95));
  EXPECT_LE(h->quantile(0.95), h->quantile(0.99));

  // An unreachable endpoint degrades to nullopt, not a throw.
  shard.stop();
  EXPECT_FALSE(probe_metrics(ep).has_value());
}

TEST(WireTrace, MetricsMessageTypesDecode) {
  const std::vector<std::uint8_t> empty;
  const auto req_hdr = decode_frame_header(
      encode_frame_header(MessageType::kMetricsRequest, 5, empty));
  EXPECT_EQ(req_hdr.type, MessageType::kMetricsRequest);
  const auto resp_hdr = decode_frame_header(
      encode_frame_header(MessageType::kMetricsResponse, 6, empty));
  EXPECT_EQ(resp_hdr.type, MessageType::kMetricsResponse);
  // One past kMetricsResponse is still unknown.
  auto bad = encode_frame_header(MessageType::kMetricsResponse, 7, empty);
  bad[6] = static_cast<std::uint8_t>(
      static_cast<std::uint16_t>(MessageType::kMetricsResponse) + 1);
  EXPECT_THROW(decode_frame_header(bad), WireError);
}
