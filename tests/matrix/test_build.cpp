#include "matrix/build.hpp"

#include <gtest/gtest.h>

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

TEST(Build, FromTriplesSortsInput) {
  std::vector<Triple<IT, VT>> t{{1, 1, 4.0}, {0, 2, 3.0}, {0, 0, 1.0}};
  auto a = csr_from_triples<IT, VT>(2, 3, t);
  EXPECT_TRUE(a.validate());
  EXPECT_EQ(a.nnz(), 3u);
  EXPECT_EQ(a.row(0).cols[0], 0);
  EXPECT_EQ(a.row(0).cols[1], 2);
  EXPECT_EQ(a.row(1).vals[0], 4.0);
}

TEST(Build, DuplicateSum) {
  std::vector<Triple<IT, VT>> t{{0, 1, 2.0}, {0, 1, 3.0}, {0, 1, 4.0}};
  auto a = csr_from_triples<IT, VT>(1, 2, t, DuplicatePolicy::kSum);
  EXPECT_EQ(a.nnz(), 1u);
  EXPECT_EQ(a.row(0).vals[0], 9.0);
}

TEST(Build, DuplicateLast) {
  std::vector<Triple<IT, VT>> t{{0, 1, 2.0}, {0, 1, 3.0}};
  auto a = csr_from_triples<IT, VT>(1, 2, t, DuplicatePolicy::kLast);
  EXPECT_EQ(a.nnz(), 1u);
  EXPECT_EQ(a.row(0).vals[0], 3.0);
}

TEST(Build, DuplicateError) {
  std::vector<Triple<IT, VT>> t{{0, 1, 2.0}, {0, 1, 3.0}};
  EXPECT_THROW((csr_from_triples<IT, VT>(1, 2, t, DuplicatePolicy::kError)),
               std::invalid_argument);
}

TEST(Build, RejectsOutOfRangeCoordinates) {
  std::vector<Triple<IT, VT>> t{{0, 5, 1.0}};
  EXPECT_THROW((csr_from_triples<IT, VT>(1, 2, t)), std::invalid_argument);
  std::vector<Triple<IT, VT>> t2{{3, 0, 1.0}};
  EXPECT_THROW((csr_from_triples<IT, VT>(1, 2, t2)), std::invalid_argument);
}

TEST(Build, EmptyTriples) {
  auto a = csr_from_triples<IT, VT>(4, 4, {});
  EXPECT_EQ(a.nnz(), 0u);
  EXPECT_TRUE(a.validate());
}

TEST(Build, CscFromTriples) {
  std::vector<Triple<IT, VT>> t{{0, 1, 2.0}, {1, 0, 3.0}, {1, 1, 4.0}};
  auto a = csc_from_triples<IT, VT>(2, 2, t);
  EXPECT_EQ(a.nnz(), 3u);
  EXPECT_EQ(a.col_nnz(0), 1);
  EXPECT_EQ(a.col_nnz(1), 2);
  auto c1 = a.col(1);
  EXPECT_EQ(c1.rows[0], 0);
  EXPECT_EQ(c1.rows[1], 1);
  EXPECT_EQ(c1.vals[0], 2.0);
}

TEST(Build, FromDenseDropsZeros) {
  auto a = csr_from_dense<IT, VT>({{0, 1, 0}, {0, 0, 0}, {2, 0, 3}});
  EXPECT_EQ(a.nrows(), 3);
  EXPECT_EQ(a.ncols(), 3);
  EXPECT_EQ(a.nnz(), 3u);
  EXPECT_EQ(a.row_nnz(1), 0);
}

TEST(Build, FromEdgesPattern) {
  auto a = csr_from_edges<IT, VT>(3, 3, {{0, 1}, {2, 0}, {0, 1}});
  EXPECT_EQ(a.nnz(), 2u);  // duplicate edge collapsed
  EXPECT_EQ(a.row(0).vals[0], 1.0);
}

TEST(Build, ToTriplesRoundTrip) {
  auto a = csr_from_dense<IT, VT>({{1, 0, 2}, {0, 3, 0}});
  auto t = to_triples(a);
  auto b = csr_from_triples<IT, VT>(a.nrows(), a.ncols(), t);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace msx
