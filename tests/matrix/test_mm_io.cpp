#include "matrix/mm_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "gen/erdos_renyi.hpp"
#include "matrix/build.hpp"
#include "matrix/ops.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

TEST(MatrixMarket, ReadGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 4 3\n"
      "1 1 1.5\n"
      "2 3 -2.0\n"
      "3 4 7\n");
  auto a = read_matrix_market<IT, VT>(in);
  EXPECT_EQ(a.nrows(), 3);
  EXPECT_EQ(a.ncols(), 4);
  EXPECT_EQ(a.nnz(), 3u);
  EXPECT_EQ(a.row(0).vals[0], 1.5);
  EXPECT_EQ(a.row(1).cols[0], 2);
  EXPECT_EQ(a.row(2).vals[0], 7.0);
}

TEST(MatrixMarket, ReadPattern) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  auto a = read_matrix_market<IT, VT>(in);
  EXPECT_EQ(a.nnz(), 2u);
  EXPECT_EQ(a.row(0).vals[0], 1.0);
}

TEST(MatrixMarket, ReadSymmetricExpands) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5\n"
      "3 3 9\n");
  auto a = read_matrix_market<IT, VT>(in);
  EXPECT_EQ(a.nnz(), 3u);  // (1,0),(0,1) expanded; diagonal kept once
  EXPECT_EQ(a.row(0).cols[0], 1);
  EXPECT_EQ(a.row(1).cols[0], 0);
  EXPECT_EQ(a.row(2).vals[0], 9.0);
  EXPECT_TRUE(is_pattern_symmetric(a));
}

TEST(MatrixMarket, DuplicatesSummed) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "1 1 2\n"
      "1 1 2\n"
      "1 1 3\n");
  auto a = read_matrix_market<IT, VT>(in);
  EXPECT_EQ(a.nnz(), 1u);
  EXPECT_EQ(a.row(0).vals[0], 5.0);
}

TEST(MatrixMarket, RejectsBadBanner) {
  std::istringstream in("%%NotMatrixMarket nope\n1 1 0\n");
  EXPECT_THROW((read_matrix_market<IT, VT>(in)), std::invalid_argument);
}

TEST(MatrixMarket, RejectsTruncated) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 3\n"
      "1 1 1.0\n");
  EXPECT_THROW((read_matrix_market<IT, VT>(in)), std::invalid_argument);
}

TEST(MatrixMarket, RejectsUnsupportedField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate complex general\n"
      "1 1 1\n1 1 1 0\n");
  EXPECT_THROW((read_matrix_market<IT, VT>(in)), std::invalid_argument);
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  auto a = erdos_renyi<IT, VT>(20, 30, 4, 77);
  std::ostringstream out;
  write_matrix_market(out, a);
  std::istringstream in(out.str());
  auto b = read_matrix_market<IT, VT>(in);
  EXPECT_EQ(a.nrows(), b.nrows());
  EXPECT_EQ(a.ncols(), b.ncols());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (std::size_t p = 0; p < a.nnz(); ++p) {
    EXPECT_EQ(a.colidx()[p], b.colidx()[p]);
    EXPECT_NEAR(a.values()[p], b.values()[p], 1e-12);
  }
}

TEST(MatrixMarket, PatternRoundTrip) {
  auto a = erdos_renyi<IT, VT>(10, 10, 3, 5);
  std::ostringstream out;
  write_matrix_market(out, a, /*pattern_only=*/true);
  std::istringstream in(out.str());
  auto b = read_matrix_market<IT, VT>(in);
  EXPECT_TRUE(pattern_equal(a, b));
  for (VT v : b.values()) EXPECT_EQ(v, 1.0);
}

TEST(MatrixMarket, FileRoundTrip) {
  auto a = erdos_renyi<IT, VT>(15, 15, 4, 3);
  const std::string path = ::testing::TempDir() + "/msx_io_test.mtx";
  write_matrix_market_file(path, a);
  auto b = read_matrix_market_file<IT, VT>(path);
  EXPECT_EQ(a.nrows(), b.nrows());
  ASSERT_EQ(a.nnz(), b.nnz());
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW((read_matrix_market_file<IT, VT>("/nonexistent/x.mtx")),
               std::invalid_argument);
}

}  // namespace
}  // namespace msx
