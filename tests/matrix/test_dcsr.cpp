#include "matrix/dcsr.hpp"

#include <gtest/gtest.h>

#include "gen/erdos_renyi.hpp"
#include "matrix/build.hpp"
#include "matrix/ops.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

TEST(DCSR, RoundTripDropsAndRestoresEmptyRows) {
  // Rows 1 and 3 empty.
  auto a = csr_from_dense<IT, VT>({
      {1, 0, 2},
      {0, 0, 0},
      {0, 3, 0},
      {0, 0, 0},
      {4, 5, 6},
  });
  auto d = csr_to_dcsr(a);
  EXPECT_TRUE(d.validate());
  EXPECT_EQ(d.nrows(), 5);
  EXPECT_EQ(d.nrows_compressed(), 3);
  EXPECT_EQ(d.nnz(), a.nnz());
  EXPECT_EQ(d.rowids()[0], 0);
  EXPECT_EQ(d.rowids()[1], 2);
  EXPECT_EQ(d.rowids()[2], 4);
  EXPECT_EQ(dcsr_to_csr(d), a);
}

TEST(DCSR, CompressedRowView) {
  auto a = csr_from_dense<IT, VT>({{0, 0}, {7, 8}});
  auto d = csr_to_dcsr(a);
  ASSERT_EQ(d.nrows_compressed(), 1);
  const auto row = d.compressed_row(0);
  EXPECT_EQ(row.row, 1);
  ASSERT_EQ(row.cols.size(), 2u);
  EXPECT_EQ(row.vals[1], 8.0);
}

TEST(DCSR, HypersparseOccupancy) {
  // One nonzero in a 1000-row matrix: occupancy 0.001.
  std::vector<Triple<IT, VT>> t{{500, 3, 1.0}};
  auto a = csr_from_triples<IT, VT>(1000, 10, t);
  auto d = csr_to_dcsr(a);
  EXPECT_EQ(d.nrows_compressed(), 1);
  EXPECT_NEAR(row_occupancy(d), 0.001, 1e-12);
  EXPECT_EQ(dcsr_to_csr(d), a);
}

TEST(DCSR, FullyDenseRowsKeepAll) {
  auto a = erdos_renyi<IT, VT>(64, 64, 4, 1);  // every row has 4 entries
  auto d = csr_to_dcsr(a);
  EXPECT_EQ(d.nrows_compressed(), 64);
  EXPECT_DOUBLE_EQ(row_occupancy(d), 1.0);
  EXPECT_EQ(dcsr_to_csr(d), a);
}

TEST(DCSR, EmptyMatrix) {
  CSRMatrix<IT, VT> a(7, 9);
  auto d = csr_to_dcsr(a);
  EXPECT_EQ(d.nrows_compressed(), 0);
  EXPECT_EQ(d.nnz(), 0u);
  EXPECT_EQ(row_occupancy(d), 0.0);
  auto back = dcsr_to_csr(d);
  EXPECT_EQ(back.nrows(), 7);
  EXPECT_EQ(back.ncols(), 9);
  EXPECT_EQ(back.nnz(), 0u);
}

TEST(DCSR, ValidateCatchesCorruption) {
  // Row ids out of order.
  DCSRMatrix<IT, VT> bad(4, 4, {2, 1}, {0, 1, 2}, {0, 1}, {1.0, 2.0});
  EXPECT_FALSE(bad.validate());
  // Empty compressed row (rowptr not strictly increasing).
  DCSRMatrix<IT, VT> bad2(4, 4, {0, 1}, {0, 0, 1}, {2}, {1.0});
  EXPECT_FALSE(bad2.validate());
}

TEST(DCSR, RandomRoundTripMany) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto a = erdos_renyi<IT, VT>(100, 80, 2, seed);
    // Punch empty rows by filtering out half the rows' entries.
    auto filtered = filter(a, [](IT i, IT, const VT&) { return i % 3 != 0; });
    auto d = csr_to_dcsr(filtered);
    EXPECT_TRUE(d.validate());
    EXPECT_EQ(dcsr_to_csr(d), filtered);
  }
}

}  // namespace
}  // namespace msx
