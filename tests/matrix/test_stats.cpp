#include "matrix/stats.hpp"

#include <gtest/gtest.h>

#include "gen/erdos_renyi.hpp"
#include "gen/structured.hpp"
#include "matrix/build.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

TEST(MatrixStats, HandComputed) {
  auto a = csr_from_dense<IT, VT>({
      {1, 1, 0, 0},
      {0, 0, 0, 0},
      {1, 0, 0, 1},
  });
  const auto s = matrix_stats(a);
  EXPECT_EQ(s.nrows, 3);
  EXPECT_EQ(s.ncols, 4);
  EXPECT_EQ(s.nnz, 4u);
  EXPECT_EQ(s.min_degree, 0);
  EXPECT_EQ(s.max_degree, 2);
  EXPECT_NEAR(s.mean_degree, 4.0 / 3.0, 1e-12);
  EXPECT_EQ(s.empty_rows, 1u);
  EXPECT_NEAR(s.density, 4.0 / 12.0, 1e-12);
  EXPECT_EQ(s.bandwidth, 2);  // entry (2,0): |2-0| = 2... and (0,1)=1, (2,3)=1
}

TEST(MatrixStats, RegularGraphHasNoSkew) {
  auto t = grid2d<IT, VT>(8, 8, /*torus=*/true);  // 4-regular
  const auto s = matrix_stats(t);
  EXPECT_EQ(s.min_degree, 4);
  EXPECT_EQ(s.max_degree, 4);
  EXPECT_DOUBLE_EQ(s.degree_skew, 1.0);
  EXPECT_DOUBLE_EQ(s.degree_stddev, 0.0);
}

TEST(MatrixStats, StarGraphIsMaximallySkewed) {
  auto g = star_graph<IT, VT>(100);
  const auto s = matrix_stats(g);
  EXPECT_EQ(s.max_degree, 99);
  EXPECT_GT(s.degree_skew, 49.0);
}

TEST(MatrixStats, EmptyMatrix) {
  CSRMatrix<IT, VT> a(0, 0);
  const auto s = matrix_stats(a);
  EXPECT_EQ(s.nnz, 0u);
  EXPECT_EQ(s.mean_degree, 0.0);
}

TEST(MatrixStats, ERDegreesExact) {
  auto a = erdos_renyi<IT, VT>(64, 64, 6, 1);
  const auto s = matrix_stats(a);
  EXPECT_EQ(s.min_degree, 6);
  EXPECT_EQ(s.max_degree, 6);
  EXPECT_DOUBLE_EQ(s.mean_degree, 6.0);
}

TEST(DegreeHistogram, BucketsCorrect) {
  // Degrees: 0, 1, 2, 3, 4 across five rows.
  auto a = csr_from_dense<IT, VT>({
      {0, 0, 0, 0, 0},
      {1, 0, 0, 0, 0},
      {1, 1, 0, 0, 0},
      {1, 1, 1, 0, 0},
      {1, 1, 1, 1, 0},
  });
  const auto h = degree_histogram(a);
  // bucket 0: degree-0 rows; bucket 1: degree 1; bucket 2: degrees 2-3;
  // bucket 3: degrees 4-7.
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], 1u);
  EXPECT_EQ(h[1], 1u);
  EXPECT_EQ(h[2], 2u);
  EXPECT_EQ(h[3], 1u);
}

TEST(DegreeHistogram, SumsToRows) {
  auto g = preferential_attachment<IT, VT>(300, 3, 9);
  const auto h = degree_histogram(g);
  std::size_t total = 0;
  for (auto c : h) total += c;
  EXPECT_EQ(total, static_cast<std::size_t>(g.nrows()));
}

}  // namespace
}  // namespace msx
