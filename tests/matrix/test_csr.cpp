#include "matrix/csr.hpp"

#include <gtest/gtest.h>

#include "matrix/build.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

TEST(CSR, DefaultIsEmpty) {
  CSRMatrix<IT, VT> a;
  EXPECT_EQ(a.nrows(), 0);
  EXPECT_EQ(a.ncols(), 0);
  EXPECT_EQ(a.nnz(), 0u);
  EXPECT_TRUE(a.validate());
}

TEST(CSR, ShapeOnlyConstructor) {
  CSRMatrix<IT, VT> a(3, 5);
  EXPECT_EQ(a.nrows(), 3);
  EXPECT_EQ(a.ncols(), 5);
  EXPECT_EQ(a.nnz(), 0u);
  EXPECT_EQ(a.row_nnz(0), 0);
  EXPECT_TRUE(a.validate());
}

TEST(CSR, AdoptArrays) {
  // [1 0 2; 0 0 0; 0 3 0]
  CSRMatrix<IT, VT> a(3, 3, {0, 2, 2, 3}, {0, 2, 1}, {1.0, 2.0, 3.0});
  EXPECT_EQ(a.nnz(), 3u);
  EXPECT_EQ(a.row_nnz(0), 2);
  EXPECT_EQ(a.row_nnz(1), 0);
  EXPECT_EQ(a.row_nnz(2), 1);
  const auto r0 = a.row(0);
  EXPECT_EQ(r0.cols[0], 0);
  EXPECT_EQ(r0.cols[1], 2);
  EXPECT_EQ(r0.vals[1], 2.0);
  EXPECT_TRUE(a.validate());
}

TEST(CSR, AdoptRejectsBadSizes) {
  // rowptr too short
  EXPECT_THROW((CSRMatrix<IT, VT>(2, 2, {0, 1}, {0}, {1.0})),
               std::invalid_argument);
  // rowptr.back != nnz
  EXPECT_THROW((CSRMatrix<IT, VT>(1, 2, {0, 2}, {0}, {1.0})),
               std::invalid_argument);
  // colidx/values mismatch
  EXPECT_THROW((CSRMatrix<IT, VT>(1, 2, {0, 1}, {0}, {1.0, 2.0})),
               std::invalid_argument);
}

TEST(CSR, ValidateCatchesUnsortedRow) {
  CSRMatrix<IT, VT> a(1, 3, {0, 2}, {2, 0}, {1.0, 2.0});
  std::string why;
  EXPECT_FALSE(a.validate(&why));
  EXPECT_NE(why.find("increasing"), std::string::npos);
}

TEST(CSR, ValidateCatchesDuplicateColumn) {
  CSRMatrix<IT, VT> a(1, 3, {0, 2}, {1, 1}, {1.0, 2.0});
  EXPECT_FALSE(a.validate());
}

TEST(CSR, ValidateCatchesOutOfRangeColumn) {
  CSRMatrix<IT, VT> a(1, 2, {0, 1}, {5}, {1.0});
  EXPECT_FALSE(a.validate());
}

TEST(CSR, EqualityIncludesValues) {
  auto a = csr_from_dense<IT, VT>({{1, 0}, {0, 2}});
  auto b = csr_from_dense<IT, VT>({{1, 0}, {0, 2}});
  auto c = csr_from_dense<IT, VT>({{1, 0}, {0, 3}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(CSR, RowViewEmptyRow) {
  CSRMatrix<IT, VT> a(2, 2, {0, 0, 1}, {1}, {4.0});
  EXPECT_TRUE(a.row(0).empty());
  EXPECT_EQ(a.row(1).size(), 1);
}

TEST(MaskViewTest, ReflectsPattern) {
  auto m = csr_from_dense<IT, VT>({{0, 5, 0}, {7, 0, 9}});
  auto view = mask_of(m);
  EXPECT_EQ(view.nrows, 2);
  EXPECT_EQ(view.ncols, 3);
  EXPECT_EQ(view.nnz(), 3u);
  EXPECT_EQ(view.row_nnz(0), 1);
  auto r1 = view.row(1);
  ASSERT_EQ(r1.size(), 2u);
  EXPECT_EQ(r1[0], 0);
  EXPECT_EQ(r1[1], 2);
}

}  // namespace
}  // namespace msx
