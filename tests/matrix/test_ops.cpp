#include "matrix/ops.hpp"

#include <gtest/gtest.h>

#include "gen/erdos_renyi.hpp"
#include "gen/structured.hpp"
#include "matrix/build.hpp"
#include "matrix/convert.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

TEST(Ops, RowDegrees) {
  auto a = csr_from_dense<IT, VT>({{1, 1, 0}, {0, 0, 0}, {1, 1, 1}});
  auto deg = row_degrees(a);
  EXPECT_EQ(deg, (std::vector<IT>{2, 0, 3}));
}

TEST(Ops, DegreeOrderDescStableTies) {
  auto a = csr_from_dense<IT, VT>({{1, 0, 0}, {1, 1, 0}, {1, 0, 0}});
  auto perm = degree_order_desc(a);
  EXPECT_EQ(perm, (std::vector<IT>{1, 0, 2}));  // deg 2 first, ties by id
}

TEST(Ops, PermuteSymmetricIsRelabeling) {
  // Path 0-1-2; relabel reversing ids: new0=old2, new1=old1, new2=old0.
  auto p = path_graph<IT, VT>(3);
  std::vector<IT> perm{2, 1, 0};
  auto q = permute_symmetric(p, perm);
  // Reversed path is still a path with same degree sequence.
  EXPECT_EQ(q.row_nnz(0), 1);
  EXPECT_EQ(q.row_nnz(1), 2);
  EXPECT_EQ(q.row_nnz(2), 1);
  EXPECT_EQ(q.row(0).cols[0], 1);
  EXPECT_TRUE(q.validate());
}

TEST(Ops, PermuteSymmetricPreservesTriangleStructure) {
  auto g = erdos_renyi<IT, VT>(50, 50, 5, 9);
  auto sym = symmetrize_pattern(remove_diagonal(g));
  auto perm = degree_order_desc(sym);
  auto relabeled = permute_symmetric(sym, perm);
  EXPECT_TRUE(relabeled.validate());
  EXPECT_EQ(relabeled.nnz(), sym.nnz());
  EXPECT_TRUE(is_pattern_symmetric(relabeled));
  // Degrees must be non-increasing after relabeling.
  for (IT i = 0; i + 1 < relabeled.nrows(); ++i) {
    EXPECT_GE(relabeled.row_nnz(i), relabeled.row_nnz(i + 1));
  }
}

TEST(Ops, TrilTriuPartition) {
  auto g = symmetrize_pattern(erdos_renyi<IT, VT>(40, 40, 6, 4));
  auto l = tril_strict(g);
  auto u = triu_strict(g);
  auto d = filter(g, [](IT i, IT j, const VT&) { return i == j; });
  EXPECT_EQ(l.nnz() + u.nnz() + d.nnz(), g.nnz());
  for (IT i = 0; i < l.nrows(); ++i) {
    for (IT p = 0; p < l.row(i).size(); ++p) {
      EXPECT_LT(l.row(i).cols[p], i);
    }
  }
  // Symmetric pattern: lower and upper halves have equal size.
  EXPECT_EQ(l.nnz(), u.nnz());
}

TEST(Ops, RemoveDiagonal) {
  auto a = csr_from_dense<IT, VT>({{1, 2}, {3, 4}});
  auto b = remove_diagonal(a);
  EXPECT_EQ(b.nnz(), 2u);
  EXPECT_EQ(b.row(0).cols[0], 1);
  EXPECT_EQ(b.row(1).cols[0], 0);
}

TEST(Ops, SponesSetsAllValuesOne) {
  auto a = csr_from_dense<IT, VT>({{5, 0}, {0, -3}});
  auto b = spones(a);
  for (VT v : b.values()) EXPECT_EQ(v, 1.0);
  EXPECT_TRUE(pattern_equal(a, b));
}

TEST(Ops, EwiseAddUnionAndSum) {
  auto a = csr_from_dense<IT, VT>({{1, 0, 2}, {0, 0, 0}});
  auto b = csr_from_dense<IT, VT>({{0, 3, 4}, {5, 0, 0}});
  auto c = ewise_add(a, b);
  auto expect = csr_from_dense<IT, VT>({{1, 3, 6}, {5, 0, 0}});
  EXPECT_EQ(c, expect);
}

TEST(Ops, EwiseMultIntersection) {
  auto a = csr_from_dense<IT, VT>({{2, 0, 3}, {1, 1, 0}});
  auto b = csr_from_dense<IT, VT>({{4, 5, 0}, {0, 2, 2}});
  auto c = ewise_mult(a, b);
  auto expect = csr_from_dense<IT, VT>({{8, 0, 0}, {0, 2, 0}});
  EXPECT_EQ(c, expect);
}

TEST(Ops, EwiseShapeMismatchThrows) {
  CSRMatrix<IT, VT> a(2, 2), b(2, 3);
  EXPECT_THROW(ewise_add(a, b), std::invalid_argument);
  EXPECT_THROW(ewise_mult(a, b), std::invalid_argument);
}

TEST(Ops, SymmetrizeAndCheck) {
  auto a = csr_from_dense<IT, VT>({{0, 1, 0}, {0, 0, 0}, {1, 0, 0}});
  EXPECT_FALSE(is_pattern_symmetric(a));
  auto s = symmetrize_pattern(a);
  EXPECT_TRUE(is_pattern_symmetric(s));
  EXPECT_EQ(s.nnz(), 4u);  // (0,1),(1,0),(0,2),(2,0)
}

TEST(Ops, ReduceSum) {
  auto a = csr_from_dense<IT, VT>({{1.5, 0}, {2.5, 3.0}});
  EXPECT_DOUBLE_EQ(reduce_sum(a), 7.0);
  CSRMatrix<IT, VT> empty(3, 3);
  EXPECT_DOUBLE_EQ(reduce_sum(empty), 0.0);
}

TEST(Ops, PatternEqualIgnoresValues) {
  auto a = csr_from_dense<IT, VT>({{1, 0}, {0, 2}});
  auto b = csr_from_dense<IT, VT>({{9, 0}, {0, 8}});
  EXPECT_TRUE(pattern_equal(a, b));
  auto c = csr_from_dense<IT, VT>({{1, 1}, {0, 2}});
  EXPECT_FALSE(pattern_equal(a, c));
}

TEST(Ops, FilterByValue) {
  auto a = csr_from_dense<IT, VT>({{1, 5}, {3, 2}});
  auto big = filter(a, [](IT, IT, const VT& v) { return v >= 3; });
  auto expect = csr_from_dense<IT, VT>({{0, 5}, {3, 0}});
  EXPECT_EQ(big, expect);
}

}  // namespace
}  // namespace msx
