#include "matrix/convert.hpp"

#include <gtest/gtest.h>

#include "gen/erdos_renyi.hpp"
#include "matrix/build.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

TEST(Convert, TransposeSmall) {
  auto a = csr_from_dense<IT, VT>({{1, 2, 0}, {0, 0, 3}});
  auto t = transpose(a);
  EXPECT_EQ(t.nrows(), 3);
  EXPECT_EQ(t.ncols(), 2);
  auto expect = csr_from_dense<IT, VT>({{1, 0}, {2, 0}, {0, 3}});
  EXPECT_EQ(t, expect);
}

TEST(Convert, TransposeTwiceIsIdentity) {
  auto a = erdos_renyi<IT, VT>(97, 53, 6, 11);
  EXPECT_EQ(transpose(transpose(a)), a);
}

TEST(Convert, TransposePreservesSorted) {
  auto a = erdos_renyi<IT, VT>(200, 300, 9, 5);
  auto t = transpose(a);
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.nnz(), a.nnz());
}

TEST(Convert, CsrToCscMatchesEntries) {
  auto a = csr_from_dense<IT, VT>({{1, 0, 2}, {0, 3, 0}, {4, 0, 5}});
  auto c = csr_to_csc(a);
  EXPECT_EQ(c.nrows(), 3);
  EXPECT_EQ(c.ncols(), 3);
  EXPECT_EQ(c.nnz(), 5u);
  auto col0 = c.col(0);
  ASSERT_EQ(col0.size(), 2);
  EXPECT_EQ(col0.rows[0], 0);
  EXPECT_EQ(col0.rows[1], 2);
  EXPECT_EQ(col0.vals[0], 1.0);
  EXPECT_EQ(col0.vals[1], 4.0);
}

TEST(Convert, CscRoundTrip) {
  auto a = erdos_renyi<IT, VT>(64, 80, 7, 21);
  auto csc = csr_to_csc(a);
  auto back = csc_to_csr(csc);
  EXPECT_EQ(a, back);
}

TEST(Convert, EmptyMatrix) {
  CSRMatrix<IT, VT> a(4, 6);
  auto t = transpose(a);
  EXPECT_EQ(t.nrows(), 6);
  EXPECT_EQ(t.ncols(), 4);
  EXPECT_EQ(t.nnz(), 0u);
  auto c = csr_to_csc(a);
  EXPECT_EQ(c.nnz(), 0u);
}

TEST(Convert, RectangularTallAndWide) {
  auto tall = erdos_renyi<IT, VT>(300, 10, 3, 2);
  EXPECT_EQ(transpose(transpose(tall)), tall);
  auto wide = erdos_renyi<IT, VT>(10, 300, 40, 3);
  EXPECT_EQ(transpose(transpose(wide)), wide);
}

}  // namespace
}  // namespace msx
