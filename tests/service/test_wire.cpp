// Wire protocol: frame headers, checksums, request/response/stats round
// trips over generated matrices, and clean rejection of truncated/corrupt
// frames (ISSUE 4 satellite).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "service/transport.hpp"
#include "service/wire.hpp"

using namespace msx;
using namespace msx::service;

using IT = int32_t;
using VT = double;
using Mat = CSRMatrix<IT, VT>;

namespace {

std::vector<std::uint8_t> frame_bytes(MessageType type, std::uint64_t rid,
                                      std::span<const std::uint8_t> payload) {
  auto bytes = encode_frame_header(type, rid, payload);
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

// Matrix with deliberately empty rows (every third row cleared).
Mat with_empty_rows(const Mat& src) {
  std::vector<IT> rowptr(1, 0), colidx;
  std::vector<VT> values;
  for (IT i = 0; i < src.nrows(); ++i) {
    if (i % 3 != 0) {
      const auto row = src.row(i);
      colidx.insert(colidx.end(), row.cols.begin(), row.cols.end());
      values.insert(values.end(), row.vals.begin(), row.vals.end());
    }
    rowptr.push_back(static_cast<IT>(colidx.size()));
  }
  return Mat(src.nrows(), src.ncols(), std::move(rowptr), std::move(colidx),
             std::move(values));
}

}  // namespace

TEST(WireFrame, HeaderRoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto header_bytes =
      encode_frame_header(MessageType::kResponse, 42, payload);
  ASSERT_EQ(header_bytes.size(), kFrameHeaderBytes);
  const auto h = decode_frame_header(header_bytes);
  EXPECT_EQ(h.version, kWireVersion);
  EXPECT_EQ(h.type, MessageType::kResponse);
  EXPECT_EQ(h.request_id, 42u);
  EXPECT_EQ(h.payload_len, payload.size());
  EXPECT_NO_THROW(verify_payload(h, payload));
}

TEST(WireFrame, RejectsBadMagicVersionTypeAndLength) {
  const std::vector<std::uint8_t> payload = {9, 9};
  auto good = encode_frame_header(MessageType::kRequest, 1, payload);

  auto bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(decode_frame_header(bad_magic), WireError);

  auto bad_version = good;
  bad_version[4] = 0x7F;
  EXPECT_THROW(decode_frame_header(bad_version), WireError);

  auto bad_type = good;
  bad_type[6] = 0x7F;
  EXPECT_THROW(decode_frame_header(bad_type), WireError);

  auto bad_len = good;
  // payload_len lives at offset 16; poison the high bytes.
  bad_len[22] = 0xFF;
  bad_len[23] = 0xFF;
  EXPECT_THROW(decode_frame_header(bad_len), WireError);

  auto short_header = good;
  short_header.pop_back();
  EXPECT_THROW(decode_frame_header(short_header), WireError);
}

TEST(WireFrame, ChecksumCatchesCorruptPayload) {
  std::vector<std::uint8_t> payload(257);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  const auto h = decode_frame_header(
      encode_frame_header(MessageType::kRequest, 7, payload));
  EXPECT_NO_THROW(verify_payload(h, payload));
  for (std::size_t flip : {std::size_t{0}, payload.size() / 2,
                           payload.size() - 1}) {
    auto corrupt = payload;
    corrupt[flip] ^= 0x01;
    EXPECT_THROW(verify_payload(h, corrupt), WireError) << flip;
  }
  auto truncated = payload;
  truncated.pop_back();
  EXPECT_THROW(verify_payload(h, truncated), WireError);
}

TEST(WireRequest, RoundTripsGeneratedMatrices) {
  struct Case {
    Mat a, b, m;
  };
  std::vector<Case> cases;
  cases.push_back({erdos_renyi<IT, VT>(80, 80, 5, 1),
                   erdos_renyi<IT, VT>(80, 80, 5, 2),
                   erdos_renyi<IT, VT>(80, 80, 7, 3)});
  cases.push_back({rmat<IT, VT>(7, 11), rmat<IT, VT>(7, 12),
                   rmat<IT, VT>(7, 13)});
  cases.push_back({with_empty_rows(erdos_renyi<IT, VT>(60, 60, 4, 4)),
                   with_empty_rows(erdos_renyi<IT, VT>(60, 60, 4, 5)),
                   with_empty_rows(erdos_renyi<IT, VT>(60, 60, 4, 6))});
  // Degenerate shapes: empty matrix, single row.
  cases.push_back({Mat(5, 5), Mat(5, 5), Mat(5, 5)});

  for (std::size_t c = 0; c < cases.size(); ++c) {
    const auto& tc = cases[c];
    MaskedOptions opts;
    opts.algo = c % 2 == 0 ? MaskedAlgo::kHash : MaskedAlgo::kMSA;
    opts.kind = c % 2 == 1 ? MaskKind::kComplement : MaskKind::kMask;
    opts.phases = PhaseMode::kTwoPhase;
    opts.heap_ninspect = 3;
    opts.inner_gallop = true;

    const auto payload = encode_request(tc.a, tc.b, tc.m, opts);
    const auto req = decode_request<IT, VT>(payload);
    EXPECT_FALSE(req.b_is_a);
    EXPECT_TRUE(req.a == tc.a) << c;
    EXPECT_TRUE(req.b() == tc.b) << c;
    EXPECT_TRUE(req.mask() == tc.m) << c;
    EXPECT_EQ(req.opts.algo, opts.algo);
    EXPECT_EQ(req.opts.kind, opts.kind);
    EXPECT_EQ(req.opts.phases, opts.phases);
    EXPECT_EQ(req.opts.heap_ninspect, opts.heap_ninspect);
    EXPECT_EQ(req.opts.inner_gallop, opts.inner_gallop);
    // Fingerprint parity: the shard-side key equals the client-side key —
    // the invariant fingerprint-affinity routing stands on.
    EXPECT_EQ(req.fingerprint(), plan_fingerprint(tc.a, tc.b, tc.m, opts))
        << c;
  }
}

TEST(WireRequest, PreservesAliasing) {
  const auto a = erdos_renyi<IT, VT>(50, 50, 5, 21);
  const auto m = erdos_renyi<IT, VT>(50, 50, 6, 22);
  MaskedOptions opts;

  {
    // B aliases A (and is sent once).
    const auto payload = encode_request(a, a, m, opts);
    const auto distinct = encode_request(a, Mat(a), m, opts);
    EXPECT_LT(payload.size(), distinct.size());
    const auto req = decode_request<IT, VT>(payload);
    EXPECT_TRUE(req.b_is_a);
    EXPECT_EQ(static_cast<const void*>(&req.b()),
              static_cast<const void*>(&req.a));
    EXPECT_EQ(req.fingerprint(), plan_fingerprint(a, a, m, opts));
  }
  {
    // Fully aliased (k-truss shape): one matrix on the wire.
    const auto payload = encode_request(a, a, a, opts);
    const auto req = decode_request<IT, VT>(payload);
    EXPECT_TRUE(req.b_is_a);
    EXPECT_TRUE(req.m_is_a);
    EXPECT_TRUE(req.a == a);
    EXPECT_EQ(req.fingerprint(), plan_fingerprint(a, a, a, opts));
  }
  {
    // M aliases B.
    const auto b = erdos_renyi<IT, VT>(50, 50, 5, 23);
    const auto payload = encode_request(a, b, b, opts);
    const auto req = decode_request<IT, VT>(payload);
    EXPECT_FALSE(req.b_is_a);
    EXPECT_TRUE(req.m_is_b);
    EXPECT_EQ(req.fingerprint(), plan_fingerprint(a, b, b, opts));
  }
}

TEST(WireRequest, RejectsTruncatedAndTrailingPayloads) {
  const auto a = erdos_renyi<IT, VT>(40, 40, 5, 31);
  const auto payload = encode_request(a, a, a, MaskedOptions{});
  // Any truncation point must throw, never crash or mis-decode.
  for (std::size_t len : {std::size_t{0}, payload.size() / 4,
                          payload.size() / 2, payload.size() - 1}) {
    const std::span<const std::uint8_t> cut(payload.data(), len);
    EXPECT_THROW((decode_request<IT, VT>(cut)), WireError) << len;
  }
  auto trailing = payload;
  trailing.push_back(0);
  EXPECT_THROW((decode_request<IT, VT>(trailing)), WireError);
}

TEST(WireRequest, RejectsTypeMismatchAndBadEnums) {
  const auto a = erdos_renyi<IT, VT>(30, 30, 4, 41);
  const auto payload = encode_request(a, a, a, MaskedOptions{});
  // Decoding with the wrong value type must fail loudly.
  EXPECT_THROW((decode_request<IT, float>(payload)), WireError);

  // Poison the algo enum (first options field, right after the alias byte).
  auto bad = payload;
  bad[1] = 0x7F;
  EXPECT_THROW((decode_request<IT, VT>(bad)), WireError);
}

TEST(WireRequest, RejectsInvalidCsrStructure) {
  // A structurally broken matrix (rowptr not matching nnz) must be caught
  // by the decoder even though the checksum would pass.
  WireWriter w;
  w.put_u8(kAliasBIsA | kAliasMIsA);
  write_options(w, MaskedOptions{});
  w.put_u8(sizeof(IT));
  w.put_u8(WireValueCode<VT>::value);
  w.put_u64(2);  // nrows
  w.put_u64(2);  // ncols
  const IT rowptr[] = {0, 1, 3};  // claims 3 nnz
  const IT colidx[] = {0, 1};     // but carries 2
  const VT values[] = {1.0, 2.0};
  w.put_array(std::span<const IT>(rowptr));
  w.put_array(std::span<const IT>(colidx));
  w.put_array(std::span<const VT>(values));
  const auto payload = w.take();
  EXPECT_THROW((decode_request<IT, VT>(payload)), WireError);
}

TEST(WireResponse, RoundTripsResultAndErrors) {
  const auto c = erdos_renyi<IT, VT>(33, 44, 3, 51);
  const auto ok = decode_response<IT, VT>(encode_response(c));
  EXPECT_EQ(ok.status, WireStatus::kOk);
  EXPECT_TRUE(ok.result == c);

  const auto err = decode_response<IT, VT>(
      encode_error_response(WireStatus::kOverloaded, "queue full"));
  EXPECT_EQ(err.status, WireStatus::kOverloaded);
  EXPECT_EQ(err.message, "queue full");

  std::vector<std::uint8_t> junk = {0xAA, 0xBB};
  EXPECT_THROW((decode_response<IT, VT>(junk)), WireError);
}

TEST(WireStats, RoundTrips) {
  ServiceStats s;
  s.requests = 10;
  s.responses = 9;
  s.errors = 1;
  s.overloaded = 2;
  s.bytes_in = 1234;
  s.bytes_out = 4321;
  s.jobs_submitted = 8;
  s.jobs_completed = 7;
  s.cache_hits = 6;
  s.cache_misses = 2;
  s.cache_grows = 1;
  s.cache_evictions = 3;
  s.cache_instances = 4;
  s.cache_bytes = 99999;
  const auto got = decode_stats(encode_stats(s));
  EXPECT_EQ(got.requests, s.requests);
  EXPECT_EQ(got.responses, s.responses);
  EXPECT_EQ(got.errors, s.errors);
  EXPECT_EQ(got.overloaded, s.overloaded);
  EXPECT_EQ(got.bytes_in, s.bytes_in);
  EXPECT_EQ(got.bytes_out, s.bytes_out);
  EXPECT_EQ(got.jobs_submitted, s.jobs_submitted);
  EXPECT_EQ(got.jobs_completed, s.jobs_completed);
  EXPECT_EQ(got.cache_hits, s.cache_hits);
  EXPECT_EQ(got.cache_bytes, s.cache_bytes);
  EXPECT_NEAR(got.warm_hit_rate(), 6.0 / 9.0, 1e-12);
}

TEST(WireTransport, FramesCrossLoopbackAndRejectCorruption) {
  auto [client, server] = loopback_pair();
  const auto a = erdos_renyi<IT, VT>(64, 64, 5, 61);
  const auto payload = encode_request(a, a, a, MaskedOptions{});

  // Clean frame round trip.
  std::thread writer([&, &client = client] {
    send_frame(*client, MessageType::kRequest, 77, payload);
  });
  FrameHeader h;
  std::vector<std::uint8_t> got;
  ASSERT_TRUE(recv_frame(*server, h, got));
  writer.join();
  EXPECT_EQ(h.request_id, 77u);
  EXPECT_EQ(got.size(), payload.size());
  EXPECT_TRUE((decode_request<IT, VT>(got).a == a));

  // Corrupt payload byte: checksum must reject it.
  auto corrupt = frame_bytes(MessageType::kRequest, 78, payload);
  corrupt[kFrameHeaderBytes + 10] ^= 0x40;
  std::thread corruptor([&, &client = client] {
    client->write_all(corrupt.data(), corrupt.size());
  });
  EXPECT_THROW(recv_frame(*server, h, got), WireError);
  corruptor.join();
}

TEST(WireTransport, TruncatedFrameAndCleanEofAreDistinct) {
  const auto a = erdos_renyi<IT, VT>(32, 32, 4, 71);
  const auto payload = encode_request(a, a, a, MaskedOptions{});
  const auto full = frame_bytes(MessageType::kRequest, 5, payload);

  {
    // Cut mid-payload: the reader must see a WireError, not a silent EOF.
    auto [client, server] = loopback_pair();
    std::thread writer([&, &client = client] {
      client->write_all(full.data(), full.size() / 2);
      client->shutdown();
    });
    FrameHeader h;
    std::vector<std::uint8_t> got;
    EXPECT_THROW(recv_frame(*server, h, got), WireError);
    writer.join();
  }
  {
    // EOF exactly between frames is a clean close.
    auto [client, server] = loopback_pair();
    std::thread writer([&, &client = client] {
      client->write_all(full.data(), full.size());
      client->shutdown();
    });
    FrameHeader h;
    std::vector<std::uint8_t> got;
    EXPECT_TRUE(recv_frame(*server, h, got));
    EXPECT_FALSE(recv_frame(*server, h, got));
    writer.join();
  }
}

TEST(WireTransport, UnixSocketRoundTrip) {
  const std::string path = testing::TempDir() + "msx_wire_test.sock";
  auto listener = listen_unix(path);
  const auto a = erdos_renyi<IT, VT>(48, 48, 5, 81);
  const auto payload = encode_request(a, a, a, MaskedOptions{});

  std::thread client_thread([&] {
    auto c = connect_unix(path);
    send_frame(*c, MessageType::kRequest, 9, payload);
    FrameHeader h;
    std::vector<std::uint8_t> reply;
    ASSERT_TRUE(recv_frame(*c, h, reply));
    EXPECT_EQ(h.type, MessageType::kResponse);
    EXPECT_EQ((decode_response<IT, VT>(reply).status), WireStatus::kOk);
  });

  auto conn = listener->accept();
  ASSERT_NE(conn, nullptr);
  FrameHeader h;
  std::vector<std::uint8_t> got;
  ASSERT_TRUE(recv_frame(*conn, h, got));
  EXPECT_TRUE((decode_request<IT, VT>(got).a == a));
  send_frame(*conn, MessageType::kResponse, h.request_id,
             encode_response(a));
  client_thread.join();
}

// --- session protocol (wire v2) + scatter-gather ---------------------------

TEST(WireGather, PartsChecksumAndBytesMatchContiguous) {
  const auto a = erdos_renyi<IT, VT>(40, 40, 5, 7);
  const auto b = erdos_renyi<IT, VT>(40, 40, 5, 8);
  const auto m = erdos_renyi<IT, VT>(40, 40, 6, 9);

  GatherPayload g;
  encode_request_parts(g, a, b, m, MaskedOptions{});
  const auto flat = g.flatten();
  EXPECT_EQ(flat.size(), g.total_bytes());
  // The multi-span hash must agree bit-for-bit with the contiguous hash the
  // receiver verifies — the invariant the whole gather path rests on.
  EXPECT_EQ(plan_hash_parts(kWireChecksumSeed, g.parts()),
            plan_hash_bytes(kWireChecksumSeed, flat.data(), flat.size()));
  // And the flattened image is exactly the classic encoding.
  EXPECT_EQ(flat, encode_request(a, b, m, MaskedOptions{}));
}

TEST(WireGather, FrameCrossesLoopbackViaWritev) {
  // send_frame_parts over both transports must be wire-identical to
  // send_frame of the flattened payload (same header, same checksum).
  const auto a = erdos_renyi<IT, VT>(32, 32, 5, 3);
  auto [c, s] = loopback_pair();
  GatherPayload g;
  encode_response_parts(g, a);
  send_frame_parts(*c, MessageType::kResponse, 77, g);
  FrameHeader h;
  std::vector<std::uint8_t> got;
  ASSERT_TRUE(recv_frame(*s, h, got));
  EXPECT_EQ(h.request_id, 77u);
  const auto resp = decode_response<IT, VT>(got);
  EXPECT_EQ(resp.status, WireStatus::kOk);
  EXPECT_TRUE(resp.result == a);
}

TEST(WireGather, FrameCrossesUnixSocketViaSendmsg) {
  const std::string path = testing::TempDir() + "msx_wire_gather.sock";
  auto listener = listen_unix(path);
  const auto a = erdos_renyi<IT, VT>(64, 64, 6, 4);

  std::thread client_thread([&] {
    auto c = connect_unix(path);
    GatherPayload g;
    encode_register_parts<IT, VT>(g, 42, 1, a, &a);  // mask aliases B
    send_frame_parts(*c, MessageType::kRegisterRequest, 0, g);
  });

  auto conn = listener->accept();
  ASSERT_NE(conn, nullptr);
  FrameHeader h;
  std::vector<std::uint8_t> got;
  ASSERT_TRUE(recv_frame(*conn, h, got));
  EXPECT_EQ(h.type, MessageType::kRegisterRequest);
  const auto reg = decode_register<IT, VT>(got);
  EXPECT_EQ(reg.structure_id, 42u);
  EXPECT_TRUE(reg.has_mask);
  EXPECT_TRUE(reg.mask_is_b);
  EXPECT_TRUE(reg.b == a);
  client_thread.join();
}

TEST(WireSession, RegisterSubmitUnregisterRoundTrip) {
  const auto b = erdos_renyi<IT, VT>(50, 50, 5, 11);
  const auto m = erdos_renyi<IT, VT>(50, 50, 7, 12);
  const auto a = erdos_renyi<IT, VT>(50, 50, 5, 13);

  {
    GatherPayload g;
    encode_register_parts(g, 7, 3, b, &m);
    const auto reg = decode_register<IT, VT>(g.flatten());
    EXPECT_EQ(reg.structure_id, 7u);
    EXPECT_EQ(reg.version, 3u);
    EXPECT_TRUE(reg.has_mask);
    EXPECT_FALSE(reg.mask_is_b);
    EXPECT_TRUE(reg.b == b);
    EXPECT_TRUE(reg.m_storage == m);
  }
  {
    // Inline A, registered mask, interactive priority.
    GatherPayload g;
    MaskedOptions opts;
    opts.kind = MaskKind::kComplement;
    encode_submit_parts<IT, VT>(g, 7, 3, kSubMRegistered | kSubInteractive,
                                &a, nullptr, opts);
    const auto sub = decode_submit<IT, VT>(g.flatten());
    EXPECT_EQ(sub.structure_id, 7u);
    EXPECT_EQ(sub.version, 3u);
    EXPECT_FALSE(sub.a_is_b);
    EXPECT_TRUE(sub.m_registered);
    EXPECT_EQ(sub.priority, Priority::kInteractive);
    EXPECT_EQ(sub.opts.kind, MaskKind::kComplement);
    EXPECT_TRUE(sub.a_storage == a);
  }
  {
    // Fully aliased k-truss shape: nothing but flags and options on the wire.
    GatherPayload g;
    encode_submit_parts<IT, VT>(g, 9, 1, kSubAIsB | kSubMIsA, nullptr,
                                nullptr, MaskedOptions{});
    const auto flat = g.flatten();
    EXPECT_LT(flat.size(), 64u);  // no matrix crossed the wire
    const auto sub = decode_submit<IT, VT>(flat);
    EXPECT_TRUE(sub.a_is_b);
    EXPECT_TRUE(sub.m_is_a);
    EXPECT_EQ(sub.priority, Priority::kBatch);
  }
  EXPECT_EQ(decode_unregister(encode_unregister(31)), 31u);
}

TEST(WireSession, RejectsContradictoryAndUnknownFlags) {
  const auto a = erdos_renyi<IT, VT>(20, 20, 4, 1);
  {
    GatherPayload g;
    encode_submit_parts<IT, VT>(g, 1, 1, kSubMIsA | kSubMIsB, &a, nullptr,
                                MaskedOptions{});
    EXPECT_THROW((decode_submit<IT, VT>(g.flatten())), WireError);
  }
  {
    WireWriter w;
    w.put_u64(1);
    w.put_u64(1);    // version
    w.put_u8(0x80);  // unknown submit flag bit
    EXPECT_THROW((decode_submit<IT, VT>(w.bytes())), WireError);
  }
  {
    WireWriter w;
    w.put_u64(1);
    w.put_u64(1);           // version
    w.put_u8(kRegMaskIsB);  // mask-is-b without has-mask
    EXPECT_THROW((decode_register<IT, VT>(w.bytes())), WireError);
  }
  // Truncated unregister payload.
  WireWriter w;
  w.put_u32(5);
  EXPECT_THROW(decode_unregister(w.bytes()), WireError);
}

TEST(WireUpdate, RoundTripsDeltaAndRejectsMalformedPayloads) {
  EdgeDelta<IT, VT> delta;
  delta.insert(3, 7, 1.5);
  delta.insert(0, 0, -2.0);
  delta.erase(5, 1);

  const auto payload = encode_update(91, 4, delta);
  const auto upd = decode_update<IT, VT>(payload);
  EXPECT_EQ(upd.structure_id, 91u);
  EXPECT_EQ(upd.new_version, 4u);
  ASSERT_EQ(upd.delta.size(), delta.size());
  EXPECT_EQ(upd.delta.ins_row, delta.ins_row);
  EXPECT_EQ(upd.delta.ins_col, delta.ins_col);
  EXPECT_EQ(upd.delta.ins_val, delta.ins_val);
  EXPECT_EQ(upd.delta.del_row, delta.del_row);
  EXPECT_EQ(upd.delta.del_col, delta.del_col);

  // An empty delta is legal on the wire (a pure version bump).
  const auto empty = decode_update<IT, VT>(
      encode_update(92, 2, EdgeDelta<IT, VT>{}));
  EXPECT_TRUE(empty.delta.empty());

  // Index-width and value-type mismatches are typed rejections, as is junk
  // past the last array.
  EXPECT_THROW((decode_update<std::int64_t, VT>(payload)), WireError);
  EXPECT_THROW((decode_update<IT, float>(payload)), WireError);
  auto trailing = payload;
  trailing.push_back(0);
  EXPECT_THROW((decode_update<IT, VT>(trailing)), WireError);
  auto truncated = payload;
  truncated.pop_back();
  EXPECT_THROW((decode_update<IT, VT>(truncated)), WireError);
}

TEST(WireFrame, VersionMismatchIsTypedWithPeerVersionAndRequestId) {
  // A well-formed frame header from a hypothetical wire-v2 peer: same stable
  // 32-byte layout, older version stamp. The decoder must parse far enough
  // to recover the request id, then throw the typed error so a server can
  // answer on that id instead of dropping the connection.
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  auto header = encode_frame_header(MessageType::kSubmitRequest, 77, payload);
  header[4] = 2;  // version lives at bytes 4..5 (little endian)
  header[5] = 0;
  try {
    decode_frame_header(header);
    FAIL() << "expected WireVersionError";
  } catch (const WireVersionError& e) {
    EXPECT_EQ(e.peer_version(), 2u);
    EXPECT_EQ(e.request_id(), 77u);
    EXPECT_NE(std::string(e.what()).find("version 2"), std::string::npos);
  }
  // Still a WireError for catch-all handlers.
  header[4] = 9;
  EXPECT_THROW(decode_frame_header(header), WireError);
}
