// ShardRouter: consistent-hash affinity, warm-hit acceptance (ISSUE 4:
// ≥90% on a mixed workload over 4 loopback shards, bit-identical results),
// failover on down shards and on overload.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "core/masked_spgemm.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "matrix/ops.hpp"
#include "service/router.hpp"
#include "service/shard.hpp"

using namespace msx;
using namespace msx::service;

using IT = int32_t;
using VT = double;
using SR = PlusTimes<VT>;
using Mat = CSRMatrix<IT, VT>;
using Shard = ServiceShard<SR, IT, VT>;
using Router = ShardRouter<SR, IT, VT>;

namespace {

struct Fleet {
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<ShardEndpoint> endpoints;

  explicit Fleet(std::size_t n, ShardConfig cfg = {}) {
    for (std::size_t i = 0; i < n; ++i) {
      shards.push_back(std::make_unique<Shard>(cfg));
      auto listener = std::make_unique<LoopbackListener>();
      auto* raw = listener.get();
      shards.back()->serve(std::move(listener));
      endpoints.push_back(ShardEndpoint{
          "shard-" + std::to_string(i),
          [raw] { return raw->connect(); }});
    }
  }
};

struct Workload {
  std::vector<Mat> a, b, m;
};

Workload make_catalog(int k) {
  Workload w;
  for (int i = 0; i < k; ++i) {
    const IT rows = 80 + 16 * static_cast<IT>(i);
    w.a.push_back(erdos_renyi<IT, VT>(rows, rows, 5, 100 + i));
    w.b.push_back(erdos_renyi<IT, VT>(rows, rows, 5, 200 + i));
    w.m.push_back(erdos_renyi<IT, VT>(rows, rows, 7, 300 + i));
  }
  return w;
}

void refresh(Mat& mat, int salt) {
  auto vals = mat.mutable_values();
  for (std::size_t p = 0; p < vals.size(); ++p) {
    vals[p] = 1.0 + static_cast<double>((p + static_cast<std::size_t>(salt)) % 7);
  }
}

}  // namespace

TEST(ConsistentHashRing, DeterministicSkipWalkAndCoverage) {
  ConsistentHashRing ring(4, 64);
  const std::vector<char> none(4, 0);

  // Deterministic and total: every point maps to a shard.
  std::vector<int> counts(4, 0);
  for (std::uint64_t p = 0; p < 4096; ++p) {
    const std::uint64_t point = plan_hash_bytes(7, &p, sizeof p);
    const int s = ring.pick(point, none);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    EXPECT_EQ(s, ring.pick(point, none));
    ++counts[static_cast<std::size_t>(s)];
  }
  // 64 vnodes keep the spread sane: nobody starves, nobody dominates.
  for (int c : counts) {
    EXPECT_GT(c, 4096 / 16);
    EXPECT_LT(c, 4096 / 2);
  }

  // Skipping a shard only reroutes its keys.
  std::vector<char> skip(4, 0);
  skip[2] = 1;
  for (std::uint64_t p = 0; p < 512; ++p) {
    const std::uint64_t point = plan_hash_bytes(7, &p, sizeof p);
    const int with = ring.pick(point, none);
    const int without = ring.pick(point, skip);
    ASSERT_NE(without, 2);
    if (with != 2) EXPECT_EQ(with, without);
  }

  // All down -> -1.
  const std::vector<char> all(4, 1);
  EXPECT_EQ(ring.pick(123, all), -1);
}

TEST(ShardRouter, AffinityWarmHitRateAndBitIdenticalResults) {
  Fleet fleet(4);
  Router router(fleet.endpoints);

  auto catalog = make_catalog(8);
  const int kRequests = 160;

  // Same structure => same shard, every time (affinity probe, no I/O).
  std::vector<int> home(catalog.a.size());
  for (std::size_t s = 0; s < catalog.a.size(); ++s) {
    home[s] = router.route(catalog.a[s], catalog.b[s], catalog.m[s]);
    for (int r = 0; r < 5; ++r) {
      EXPECT_EQ(home[s],
                router.route(catalog.a[s], catalog.b[s], catalog.m[s]));
    }
  }

  // Mixed stream with fresh numerics per request; results must be
  // bit-identical to direct masked_spgemm calls.
  for (int r = 0; r < kRequests; ++r) {
    const auto s = static_cast<std::size_t>(r % catalog.a.size());
    refresh(catalog.a[s], r);
    const auto want =
        masked_spgemm<SR>(catalog.a[s], catalog.b[s], catalog.m[s]);
    const auto got =
        router.request(catalog.a[s], catalog.b[s], catalog.m[s]);
    ASSERT_TRUE(got == want) << "request " << r;
  }

  // Warm-hit acceptance: every structure misses once (first sight) and hits
  // thereafter — the fleet-wide warm rate must clear 90%.
  std::uint64_t hits = 0, lookups = 0, served = 0;
  for (std::size_t i = 0; i < fleet.shards.size(); ++i) {
    const auto st = router.shard_stats(i);
    hits += st.cache_hits;
    lookups += st.cache_hits + st.cache_misses + st.cache_grows;
    served += st.requests;
  }
  EXPECT_EQ(served, static_cast<std::uint64_t>(kRequests));
  ASSERT_GT(lookups, 0u);
  const double warm = static_cast<double>(hits) / static_cast<double>(lookups);
  EXPECT_GE(warm, 0.9) << hits << "/" << lookups;

  // Routing matched the probe: each shard served exactly the requests of
  // the structures it is home to.
  const auto rs = router.stats();
  std::vector<std::uint64_t> expect(fleet.shards.size(), 0);
  for (std::size_t s = 0; s < catalog.a.size(); ++s) {
    expect[static_cast<std::size_t>(home[s])] +=
        static_cast<std::uint64_t>(kRequests) / catalog.a.size();
  }
  EXPECT_EQ(rs.routed, expect);
  EXPECT_EQ(rs.failovers, 0u);
}

TEST(ShardRouter, AliasedAndComplementedRequestsRoundTrip) {
  Fleet fleet(2);
  Router router(fleet.endpoints);

  const auto g = symmetrize_pattern(rmat<IT, VT>(7, 42));
  {
    // Fully aliased (tricount shape).
    const auto want = masked_spgemm<SR>(g, g, g);
    EXPECT_TRUE(router.request(g, g, g) == want);
  }
  {
    MaskedOptions opts;
    opts.kind = MaskKind::kComplement;
    opts.algo = MaskedAlgo::kMSA;
    const auto m = erdos_renyi<IT, VT>(g.nrows(), g.ncols(), 6, 5);
    const auto want = masked_spgemm<SR>(g, g, m, opts);
    EXPECT_TRUE(router.request(g, g, m, opts) == want);
  }
  {
    // Bad request surfaces as invalid_argument through the wire.
    const auto bad = erdos_renyi<IT, VT>(g.nrows() + 1, g.ncols(), 4, 6);
    EXPECT_THROW(router.request(g, g, bad), std::invalid_argument);
  }
}

TEST(ShardRouter, FailoverReroutesDownShardAndRecovers) {
  Fleet fleet(4);
  Router router(fleet.endpoints);

  auto catalog = make_catalog(4);
  const std::size_t s = 0;
  const int original = router.route(catalog.a[s], catalog.b[s], catalog.m[s]);
  ASSERT_GE(original, 0);

  router.mark_down(static_cast<std::size_t>(original));
  const int rerouted = router.route(catalog.a[s], catalog.b[s], catalog.m[s]);
  ASSERT_GE(rerouted, 0);
  EXPECT_NE(rerouted, original);

  // Serving still works and stays bit-identical through the failover shard.
  const auto want =
      masked_spgemm<SR>(catalog.a[s], catalog.b[s], catalog.m[s]);
  EXPECT_TRUE(router.request(catalog.a[s], catalog.b[s], catalog.m[s]) ==
              want);

  // Other structures keep their homes (only the down shard's keys move).
  for (std::size_t o = 1; o < catalog.a.size(); ++o) {
    const int before = router.route(catalog.a[o], catalog.b[o], catalog.m[o]);
    router.mark_up(static_cast<std::size_t>(original));
    const int after = router.route(catalog.a[o], catalog.b[o], catalog.m[o]);
    router.mark_down(static_cast<std::size_t>(original));
    if (before != original && after != original) {
      EXPECT_EQ(before, after);
    }
  }

  router.mark_up(static_cast<std::size_t>(original));
  EXPECT_EQ(original, router.route(catalog.a[s], catalog.b[s], catalog.m[s]));
}

TEST(ShardRouter, DeadEndpointIsMarkedDownAutomatically) {
  Fleet fleet(2);
  // Shard 2 refuses every dial.
  auto endpoints = fleet.endpoints;
  endpoints.push_back(ShardEndpoint{
      "dead", []() -> std::unique_ptr<Stream> {
        throw TransportError("connection refused");
      }});
  Router router(std::move(endpoints));

  auto catalog = make_catalog(6);
  for (std::size_t s = 0; s < catalog.a.size(); ++s) {
    const auto want =
        masked_spgemm<SR>(catalog.a[s], catalog.b[s], catalog.m[s]);
    EXPECT_TRUE(router.request(catalog.a[s], catalog.b[s], catalog.m[s]) ==
                want);
  }
  // Either no key hashed to the dead shard, or it was marked down on first
  // contact; in both cases every request succeeded.
  const auto rs = router.stats();
  EXPECT_EQ(std::accumulate(rs.routed.begin(), rs.routed.end(),
                            std::uint64_t{0}),
            catalog.a.size());
  if (rs.failovers > 0) {
    EXPECT_TRUE(router.is_down(2));
    EXPECT_GE(rs.down_marks, 1u);
  }
}

TEST(ShardRouter, AllShardsDownThrowsTransportError) {
  Fleet fleet(2);
  Router router(fleet.endpoints);
  router.mark_down(0);
  router.mark_down(1);
  const auto a = erdos_renyi<IT, VT>(30, 30, 4, 9);
  EXPECT_THROW(router.request(a, a, a), TransportError);
  EXPECT_EQ(router.route(a, a, a), -1);
}

TEST(ShardRouter, OverloadedShardSpillsSingleRequest) {
  // One-shard "fleet" that always rejects (admission capacity 0 jobs is
  // unbounded, so use a gate): simpler — two shards, the home shard rejects
  // everything because its executor is saturated by a parked job.
  ShardConfig cfg;
  cfg.limits.pool_threads = 1;
  cfg.limits.max_pending_jobs = 1;
  cfg.limits.admission = AdmissionPolicy::kReject;
  Fleet fleet(2, cfg);
  Router router(fleet.endpoints);

  const auto a = erdos_renyi<IT, VT>(64, 64, 5, 12);
  const int home = router.route(a, a, a);
  ASSERT_GE(home, 0);

  // Saturate the home shard: park its pool worker and fill the admission
  // slot with a request sent directly (bypassing the router).
  auto& home_shard = *fleet.shards[static_cast<std::size_t>(home)];
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  home_shard.executor().pool().submit_detached([opened] { opened.wait(); });
  auto parked =
      home_shard.executor().submit(a, a, a);  // occupies the only slot

  // The router's request gets kOverloaded from home and spills to the other
  // shard — still bit-identical.
  const auto want = masked_spgemm<SR>(a, a, a);
  EXPECT_TRUE(router.request(a, a, a) == want);
  const auto rs = router.stats();
  EXPECT_EQ(rs.overload_reroutes, 1u);
  EXPECT_EQ(rs.routed[static_cast<std::size_t>(1 - home)], 1u);
  EXPECT_FALSE(router.is_down(static_cast<std::size_t>(home)));

  gate.set_value();
  parked.get();
}

// --- health probing & rejoin (ISSUE 5 satellite, ROADMAP PR-4 item) --------

TEST(ShardRouter, ProbeBringsDownShardBackUp) {
  Fleet fleet(2);
  Router router(fleet.endpoints);
  router.mark_down(0);
  ASSERT_TRUE(router.is_down(0));

  // The shard is actually alive: one probe round rejoins it.
  EXPECT_EQ(router.probe_down_shards(), 1u);
  EXPECT_FALSE(router.is_down(0));
  const auto st = router.stats();
  EXPECT_GE(st.probes, 1u);
  EXPECT_EQ(st.rejoins, 1u);

  // A genuinely dead shard stays down across probe rounds.
  fleet.shards[1]->stop();
  router.mark_down(1);
  EXPECT_EQ(router.probe_down_shards(), 0u);
  EXPECT_TRUE(router.is_down(1));
}

TEST(ShardRouter, BackgroundProberRejoinsAutomatically) {
  Fleet fleet(2);
  RouterConfig cfg;
  cfg.probe_interval = std::chrono::milliseconds(5);
  Router router(fleet.endpoints, cfg);
  router.mark_down(0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (router.is_down(0) && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_FALSE(router.is_down(0));

  // Routing works again after the rejoin.
  auto w = make_catalog(2);
  const auto want = masked_spgemm<SR>(w.a[0], w.b[0], w.m[0]);
  EXPECT_TRUE(router.request(w.a[0], w.b[0], w.m[0]) == want);
}
