// ServiceShard: serving loop, pipelining, error statuses, back-pressure
// (kOverloaded) and stats over the wire (ISSUE 4).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "core/masked_spgemm.hpp"
#include "gen/erdos_renyi.hpp"
#include "service/shard.hpp"
#include "service/transport.hpp"

using namespace msx;
using namespace msx::service;

using IT = int32_t;
using VT = double;
using SR = PlusTimes<VT>;
using Mat = CSRMatrix<IT, VT>;
using Shard = ServiceShard<SR, IT, VT>;

TEST(ServiceShard, ServesRequestsBitIdenticalToDirectCalls) {
  Shard shard;
  auto [client, server] = loopback_pair();
  shard.attach(std::move(server));

  const auto a = erdos_renyi<IT, VT>(120, 120, 5, 1);
  const auto b = erdos_renyi<IT, VT>(120, 120, 5, 2);
  const auto m = erdos_renyi<IT, VT>(120, 120, 7, 3);

  for (auto kind : {MaskKind::kMask, MaskKind::kComplement}) {
    MaskedOptions opts;
    opts.algo = MaskedAlgo::kHash;
    opts.kind = kind;
    const auto want = masked_spgemm<SR>(a, b, m, opts);
    send_frame(*client, MessageType::kRequest, 11,
               encode_request(a, b, m, opts));
    FrameHeader h;
    std::vector<std::uint8_t> reply;
    ASSERT_TRUE(recv_frame(*client, h, reply));
    EXPECT_EQ(h.type, MessageType::kResponse);
    EXPECT_EQ(h.request_id, 11u);
    const auto resp = decode_response<IT, VT>(reply);
    ASSERT_EQ(resp.status, WireStatus::kOk) << resp.message;
    EXPECT_TRUE(resp.result == want);
  }
  const auto st = shard.stats();
  EXPECT_EQ(st.requests, 2u);
  EXPECT_EQ(st.responses, 2u);
  EXPECT_EQ(st.errors, 0u);
  EXPECT_GT(st.bytes_in, 0u);
  EXPECT_GT(st.bytes_out, 0u);
}

TEST(ServiceShard, PipelinedRequestsAnswerInOrderWithEchoedIds) {
  Shard shard;
  auto [client, server] = loopback_pair();
  shard.attach(std::move(server));

  const auto a = erdos_renyi<IT, VT>(90, 90, 5, 4);
  const auto m = erdos_renyi<IT, VT>(90, 90, 6, 5);
  const auto want = masked_spgemm<SR>(a, a, m);

  const int kInFlight = 8;
  for (int i = 0; i < kInFlight; ++i) {
    send_frame(*client, MessageType::kRequest, 100 + i,
               encode_request(a, a, m, MaskedOptions{}));
  }
  for (int i = 0; i < kInFlight; ++i) {
    FrameHeader h;
    std::vector<std::uint8_t> reply;
    ASSERT_TRUE(recv_frame(*client, h, reply));
    EXPECT_EQ(h.request_id, 100u + static_cast<std::uint64_t>(i));
    EXPECT_TRUE((decode_response<IT, VT>(reply).result == want));
  }
  // Repeated structure: the shard's plan cache served the repeats warm.
  EXPECT_GE(shard.stats().cache_hits, static_cast<std::uint64_t>(kInFlight - 2));
}

TEST(ServiceShard, BadRequestsGetStatusNotDisconnect) {
  Shard shard;
  auto [client, server] = loopback_pair();
  shard.attach(std::move(server));

  const auto a = erdos_renyi<IT, VT>(50, 50, 4, 6);
  const auto bad_b = erdos_renyi<IT, VT>(40, 40, 4, 7);  // shape mismatch
  send_frame(*client, MessageType::kRequest, 1,
             encode_request(a, bad_b, a, MaskedOptions{}));

  // MCA × complement is rejected by the registry.
  MaskedOptions mca;
  mca.algo = MaskedAlgo::kMCA;
  mca.kind = MaskKind::kComplement;
  send_frame(*client, MessageType::kRequest, 2, encode_request(a, a, a, mca));

  // The connection survives both; a valid request still works.
  send_frame(*client, MessageType::kRequest, 3,
             encode_request(a, a, a, MaskedOptions{}));

  FrameHeader h;
  std::vector<std::uint8_t> reply;
  ASSERT_TRUE(recv_frame(*client, h, reply));
  EXPECT_EQ((decode_response<IT, VT>(reply).status), WireStatus::kBadRequest);
  ASSERT_TRUE(recv_frame(*client, h, reply));
  EXPECT_EQ((decode_response<IT, VT>(reply).status), WireStatus::kBadRequest);
  ASSERT_TRUE(recv_frame(*client, h, reply));
  EXPECT_EQ((decode_response<IT, VT>(reply).status), WireStatus::kOk);

  const auto st = shard.stats();
  EXPECT_EQ(st.errors, 2u);
  EXPECT_EQ(st.requests, 3u);
}

TEST(ServiceShard, CorruptFrameDropsTheConnection) {
  Shard shard;
  auto [client, server] = loopback_pair();
  shard.attach(std::move(server));

  std::vector<std::uint8_t> garbage(64, 0xAB);
  client->write_all(garbage.data(), garbage.size());

  // The shard abandons the corrupt stream; the client sees EOF.
  std::uint8_t byte;
  EXPECT_EQ(client->read_some(&byte, 1), 0u);
}

TEST(ServiceShard, OverloadAnswersKOverloadedUnderRejectPolicy) {
  ShardConfig cfg;
  cfg.limits.pool_threads = 1;
  cfg.limits.max_pending_jobs = 1;
  cfg.limits.admission = AdmissionPolicy::kReject;
  Shard shard(cfg);
  auto [client, server] = loopback_pair();
  shard.attach(std::move(server));

  // Deterministic overload: occupy the single pool worker with a gate task
  // so the first request stays pending while the second is admitted.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  shard.executor().pool().submit_detached([opened] { opened.wait(); });

  const auto a = erdos_renyi<IT, VT>(60, 60, 5, 8);
  send_frame(*client, MessageType::kRequest, 1,
             encode_request(a, a, a, MaskedOptions{}));
  // Wait until request 1 holds the executor's only admission slot before
  // sending request 2 (submission happens on the shard's reader thread).
  while (shard.stats().jobs_submitted < 1) {
    std::this_thread::yield();
  }
  send_frame(*client, MessageType::kRequest, 2,
             encode_request(a, a, a, MaskedOptions{}));
  // Request 2 must be rejected while request 1 still holds the slot — wait
  // for the executor's rejection counter before opening the gate, or the
  // gate could free the slot first and request 2 would be admitted.
  while (shard.executor().stats().rejected < 1) {
    std::this_thread::yield();
  }

  FrameHeader h;
  std::vector<std::uint8_t> reply;
  // Responses are FIFO; request 1 only completes once the gate opens, but
  // request 2's rejection is already queued behind it.
  gate.set_value();
  ASSERT_TRUE(recv_frame(*client, h, reply));
  EXPECT_EQ(h.request_id, 1u);
  EXPECT_EQ((decode_response<IT, VT>(reply).status), WireStatus::kOk);
  ASSERT_TRUE(recv_frame(*client, h, reply));
  EXPECT_EQ(h.request_id, 2u);
  EXPECT_EQ((decode_response<IT, VT>(reply).status), WireStatus::kOverloaded);

  const auto st = shard.stats();
  EXPECT_EQ(st.overloaded, 1u);
  EXPECT_EQ(st.errors, 0u);
}

TEST(ServiceShard, StatsRequestAnswersOverTheWire) {
  Shard shard;
  auto [client, server] = loopback_pair();
  shard.attach(std::move(server));

  const auto a = erdos_renyi<IT, VT>(70, 70, 5, 9);
  for (int i = 0; i < 3; ++i) {
    send_frame(*client, MessageType::kRequest, 10 + i,
               encode_request(a, a, a, MaskedOptions{}));
  }
  FrameHeader h;
  std::vector<std::uint8_t> reply;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(recv_frame(*client, h, reply));

  send_frame(*client, MessageType::kStatsRequest, 99, {});
  ASSERT_TRUE(recv_frame(*client, h, reply));
  EXPECT_EQ(h.type, MessageType::kStatsResponse);
  EXPECT_EQ(h.request_id, 99u);
  const auto stats = decode_stats(reply);
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.jobs_submitted, 3u);
  EXPECT_GE(stats.cache_hits, 2u);
  EXPECT_GT(stats.cache_bytes, 0u);
}

TEST(ServiceShard, ServesListenerAcrossMultipleConnections) {
  Shard shard;
  auto listener = std::make_unique<LoopbackListener>();
  auto* raw = listener.get();
  shard.serve(std::move(listener));

  const auto a = erdos_renyi<IT, VT>(80, 80, 5, 10);
  const auto m = erdos_renyi<IT, VT>(80, 80, 6, 11);
  const auto want = masked_spgemm<SR>(a, a, m);

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      auto stream = raw->connect();
      for (int r = 0; r < 5; ++r) {
        send_frame(*stream, MessageType::kRequest,
                   static_cast<std::uint64_t>(c * 100 + r),
                   encode_request(a, a, m, MaskedOptions{}));
        FrameHeader h;
        std::vector<std::uint8_t> reply;
        if (!recv_frame(*stream, h, reply) ||
            !(decode_response<IT, VT>(reply).result == want)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(shard.stats().requests, 20u);
}

// Wire v2<->v3 compatibility: a peer speaking an older wire version gets a
// versioned kBadRequest on its own request id and a clean close — no hang,
// no silent drop (ISSUE 7 satellite).
TEST(ServiceShard, OlderWireVersionPeerIsRejectedWithVersionedError) {
  Shard shard;
  auto [client, server] = loopback_pair();
  shard.attach(std::move(server));

  // Hand-assemble a v2-stamped frame: current header layout, version bytes
  // patched, arbitrary payload (a v2 peer's encoding differs — the shard
  // must answer from the header alone).
  const std::vector<std::uint8_t> payload = {0xde, 0xad, 0xbe, 0xef};
  auto frame = encode_frame_header(MessageType::kRequest, 123, payload);
  frame[4] = 2;
  frame[5] = 0;
  frame.insert(frame.end(), payload.begin(), payload.end());
  client->write_all(frame.data(), frame.size());

  FrameHeader h;
  std::vector<std::uint8_t> reply;
  ASSERT_TRUE(recv_frame(*client, h, reply));
  EXPECT_EQ(h.type, MessageType::kResponse);
  EXPECT_EQ(h.request_id, 123u);
  const auto resp = decode_response<IT, VT>(reply);
  EXPECT_EQ(resp.status, WireStatus::kBadRequest);
  EXPECT_NE(resp.message.find("version 2"), std::string::npos);
  EXPECT_NE(resp.message.find("version " + std::to_string(kWireVersion)),
            std::string::npos);

  // The shard closes the connection after the versioned error: the next read
  // sees EOF, never a hang.
  EXPECT_FALSE(recv_frame(*client, h, reply));
  EXPECT_GE(shard.stats().errors, 1u);
}
