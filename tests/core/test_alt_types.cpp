// Template-parameter coverage: the whole stack instantiated with 64-bit
// indices and float values (everything else tests int32/double). Catches
// narrowing, sentinel (-1 key) and index-arithmetic assumptions.
#include <gtest/gtest.h>

#include "core/masked_spgemm.hpp"
#include "core/reference.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "matrix/build.hpp"
#include "matrix/convert.hpp"
#include "matrix/ops.hpp"

namespace msx {
namespace {

using IT = std::int64_t;
using VT = float;

const std::vector<MaskedAlgo> kAlgos{
    MaskedAlgo::kMSA,  MaskedAlgo::kHash,    MaskedAlgo::kMCA,
    MaskedAlgo::kHeap, MaskedAlgo::kHeapDot, MaskedAlgo::kInner,
    MaskedAlgo::kHybrid, MaskedAlgo::kMSABitmap};

TEST(AltTypes, AllSchemesMatchReference) {
  auto a = erdos_renyi<IT, VT>(120, 120, 7, 1);
  auto b = erdos_renyi<IT, VT>(120, 120, 7, 2);
  auto m = erdos_renyi<IT, VT>(120, 120, 9, 3);
  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  for (auto algo : kAlgos) {
    MaskedOptions o;
    o.algo = algo;
    auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
    ASSERT_EQ(got.nnz(), want.nnz()) << to_string(algo);
    for (std::size_t p = 0; p < got.nnz(); ++p) {
      ASSERT_EQ(got.colidx()[p], want.colidx()[p]) << to_string(algo);
      ASSERT_NEAR(got.values()[p], want.values()[p], 1e-4f)
          << to_string(algo);
    }
  }
}

TEST(AltTypes, ComplementWorks) {
  auto a = erdos_renyi<IT, VT>(60, 60, 5, 4);
  auto b = erdos_renyi<IT, VT>(60, 60, 5, 5);
  auto m = erdos_renyi<IT, VT>(60, 60, 7, 6);
  auto want =
      reference_masked_spgemm<PlusTimes<VT>>(a, b, m, MaskKind::kComplement);
  for (auto algo : {MaskedAlgo::kMSA, MaskedAlgo::kHash, MaskedAlgo::kHeap,
                    MaskedAlgo::kInner}) {
    MaskedOptions o;
    o.algo = algo;
    o.kind = MaskKind::kComplement;
    auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
    EXPECT_TRUE(pattern_equal(got, want)) << to_string(algo);
  }
}

TEST(AltTypes, MatrixOpsRoundTrip) {
  auto a = rmat<IT, VT>(7, 7);
  EXPECT_EQ(transpose(transpose(a)), a);
  auto csc = csr_to_csc(a);
  EXPECT_EQ(csc_to_csr(csc), a);
  EXPECT_TRUE(is_pattern_symmetric(a));
}

TEST(AltTypes, IntegerSemiringOverFloatMatrices) {
  auto a = erdos_renyi<IT, VT>(50, 50, 4, 8);
  auto m = erdos_renyi<IT, VT>(50, 50, 6, 9);
  auto c = masked_spgemm<PlusPair<std::int64_t>>(a, a, m);
  static_assert(std::is_same_v<decltype(c)::index_type, std::int64_t>);
  static_assert(std::is_same_v<decltype(c)::value_type, std::int64_t>);
  for (auto v : c.values()) EXPECT_GE(v, 1);
}

TEST(AltTypes, HashSentinelSafeWithHuge64BitKeys) {
  // The hash table's empty sentinel is IT(-1); legitimate keys far beyond
  // 2^32 must hash, probe and gather correctly.
  HashMasked<IT, VT> acc;
  const IT big = (IT{1} << 40) + 12345;
  const std::vector<IT> mask{big, big + 1, big + (IT{1} << 20)};
  acc.prepare(mask);
  constexpr auto add = [](VT a, VT b) { return a + b; };
  acc.insert(big, [] { return 1.5f; }, add);
  acc.insert(big + 1, [] { return 2.5f; }, add);
  acc.insert(big + 1, [] { return 0.5f; }, add);
  acc.insert(big + 2, [] { return 9.0f; }, add);  // not in mask
  std::vector<IT> cols(3);
  std::vector<VT> vals(3);
  const IT cnt = acc.gather(mask, cols.data(), vals.data());
  ASSERT_EQ(cnt, 2);
  EXPECT_EQ(cols[0], big);
  EXPECT_FLOAT_EQ(vals[0], 1.5f);
  EXPECT_EQ(cols[1], big + 1);
  EXPECT_FLOAT_EQ(vals[1], 3.0f);
}

}  // namespace
}  // namespace msx
