// Schedule-equivalence suite (ISSUE 2): the row-parallel decomposition owns
// disjoint output rows, so every schedule — including the flop-balanced
// partition and every cost model behind it — must produce bit-identical CSR
// output for every (algorithm, phase, mask-kind) combination.
#include <gtest/gtest.h>

#include <vector>

#include "common/parallel.hpp"
#include "core/masked_spgemm.hpp"
#include "core/plan.hpp"
#include "gen/rmat.hpp"
#include "gen/structured.hpp"
#include "test_helpers.hpp"

namespace msx {
namespace {

using IT = std::int32_t;
using VT = double;

const std::vector<Schedule>& all_schedules() {
  static const std::vector<Schedule> s{
      Schedule::kAuto, Schedule::kStatic, Schedule::kDynamic,
      Schedule::kGuided, Schedule::kFlopBalanced};
  return s;
}

struct Combo {
  MaskedAlgo algo;
  PhaseMode phases;
  MaskKind kind;
};

std::vector<Combo> supported_combos() {
  std::vector<Combo> combos;
  for (PhaseMode ph : msx::testing::all_phases()) {
    for (MaskedAlgo algo : msx::testing::all_algos()) {
      combos.push_back({algo, ph, MaskKind::kMask});
    }
    for (MaskedAlgo algo : msx::testing::complement_algos()) {
      combos.push_back({algo, ph, MaskKind::kComplement});
    }
  }
  return combos;
}

std::string label(const Combo& c, Schedule s) {
  return scheme_name(c.algo, c.phases) + "/" + to_string(c.kind) + "/" +
         to_string(s);
}

// Skewed (R-MAT) inputs: the case where schedules actually distribute work
// differently and a row-assignment bug would show.
TEST(ScheduleEquivalence, BitIdenticalAcrossSchedulesForEveryCombo) {
  const auto a = rmat<IT, VT>(8, 11);
  const auto b = rmat<IT, VT>(8, 12);
  const auto m = rmat<IT, VT>(8, 13);
  for (const Combo& c : supported_combos()) {
    MaskedOptions o;
    o.algo = c.algo;
    o.phases = c.phases;
    o.kind = c.kind;
    o.schedule = Schedule::kStatic;
    const auto want = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
    for (Schedule s : all_schedules()) {
      o.schedule = s;
      const auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
      EXPECT_EQ(want, got) << label(c, s);
    }
  }
}

// The explicit cost models must not change results either — they only move
// block boundaries.
TEST(ScheduleEquivalence, CostModelsAreResultInvariant) {
  const auto a = rmat<IT, VT>(7, 21);
  const auto b = rmat<IT, VT>(7, 22);
  const auto m = rmat<IT, VT>(7, 23);
  for (MaskedAlgo algo : msx::testing::all_algos()) {
    MaskedOptions o;
    o.algo = algo;
    o.schedule = Schedule::kStatic;
    const auto want = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
    o.schedule = Schedule::kFlopBalanced;
    for (CostModel cm :
         {CostModel::kAuto, CostModel::kFlops, CostModel::kMaskNnz}) {
      o.cost_model = cm;
      const auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
      EXPECT_EQ(want, got) << to_string(algo) << "/" << to_string(cm);
    }
  }
}

// Plan path: the cached partition must reproduce the uncached result, and a
// warm plan must keep producing it.
TEST(ScheduleEquivalence, PlanWithCachedPartitionMatchesStateless) {
  const auto a = rmat<IT, VT>(8, 31);
  const auto b = rmat<IT, VT>(8, 32);
  const auto m = rmat<IT, VT>(8, 33);
  for (PhaseMode ph : msx::testing::all_phases()) {
    for (MaskedAlgo algo :
         {MaskedAlgo::kMSA, MaskedAlgo::kHash, MaskedAlgo::kInner}) {
      MaskedOptions o;
      o.algo = algo;
      o.phases = ph;
      o.schedule = Schedule::kStatic;
      const auto want = masked_spgemm<PlusTimes<VT>>(a, b, m, o);

      o.schedule = Schedule::kFlopBalanced;
      auto plan = masked_plan<PlusTimes<VT>>(a, b, m, o);
      EXPECT_EQ(want, plan.execute()) << scheme_name(algo, ph) << " cold";
      EXPECT_TRUE(plan.partition_cached());
      EXPECT_EQ(want, plan.execute()) << scheme_name(algo, ph) << " warm";
    }
  }
}

// Per-block accumulator sizing (MSA / complemented Hash size their dense
// scratch by the widest row of each partition block): a banded structure,
// where block widths are genuinely narrower than the matrix, must still be
// bit-identical to the static schedule.
TEST(ScheduleEquivalence, BlockSizedAccumulatorsMatchOnBandedStructure) {
  const IT n = 600;
  const auto g = grid2d<IT, VT>(20, 30);  // bandwidth ~30 — narrow blocks
  ASSERT_EQ(g.nrows(), n);
  for (MaskedAlgo algo :
       {MaskedAlgo::kMSA, MaskedAlgo::kMSABitmap, MaskedAlgo::kHash}) {
    for (MaskKind kind : {MaskKind::kMask, MaskKind::kComplement}) {
      MaskedOptions o;
      o.algo = algo;
      o.kind = kind;
      o.schedule = Schedule::kStatic;
      const auto want = masked_spgemm<PlusTimes<VT>>(g, g, g, o);
      o.schedule = Schedule::kFlopBalanced;
      const auto got = masked_spgemm<PlusTimes<VT>>(g, g, g, o);
      EXPECT_EQ(want, got) << to_string(algo) << "/" << to_string(kind);

      // Warm-plan path: cached partition carries the block widths.
      auto plan = masked_plan<PlusTimes<VT>>(g, g, g, o);
      EXPECT_EQ(want, plan.execute()) << to_string(algo) << " cold";
      EXPECT_EQ(want, plan.execute()) << to_string(algo) << " warm";
    }
  }
}

// Degenerate shapes must survive every schedule (empty matrices exercise the
// zero-block partition).
TEST(ScheduleEquivalence, EmptyAndTinyMatricesSurviveAllSchedules) {
  const CSRMatrix<IT, VT> empty(0, 0);
  const auto tiny = rmat<IT, VT>(3, 5);
  for (Schedule s : all_schedules()) {
    MaskedOptions o;
    o.algo = MaskedAlgo::kMSA;
    o.schedule = s;
    const auto c_empty = masked_spgemm<PlusTimes<VT>>(empty, empty, empty, o);
    EXPECT_EQ(c_empty.nrows(), 0);
    EXPECT_EQ(c_empty.nnz(), 0u);
    const auto c_tiny = masked_spgemm<PlusTimes<VT>>(tiny, tiny, tiny, o);
    EXPECT_TRUE(msx::testing::pattern_subset_of_mask(c_tiny, tiny));
  }
}

}  // namespace
}  // namespace msx
