// Extensions beyond the paper's 14 schemes: the bitmap-state MSA and the
// galloping Inner intersection. Both must be drop-in correct.
#include <gtest/gtest.h>

#include "core/masked_spgemm.hpp"
#include "core/reference.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "test_helpers.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;
using msx::testing::matrices_near;

TEST(MSABitmapScheme, MatchesReferenceBothPhases) {
  auto a = erdos_renyi<IT, VT>(150, 150, 8, 1);
  auto b = erdos_renyi<IT, VT>(150, 150, 8, 2);
  auto m = erdos_renyi<IT, VT>(150, 150, 12, 3);
  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  for (auto ph : msx::testing::all_phases()) {
    MaskedOptions o;
    o.algo = MaskedAlgo::kMSABitmap;
    o.phases = ph;
    auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
    EXPECT_TRUE(matrices_near(got, want)) << to_string(ph);
  }
}

TEST(MSABitmapScheme, MatchesByteMSAExactly) {
  auto a = rmat<IT, VT>(8, 4);
  auto b = rmat<IT, VT>(8, 5);
  auto m = rmat<IT, VT>(8, 6);
  MaskedOptions byte_o;
  byte_o.algo = MaskedAlgo::kMSA;
  MaskedOptions bit_o;
  bit_o.algo = MaskedAlgo::kMSABitmap;
  EXPECT_EQ((masked_spgemm<PlusTimes<VT>>(a, b, m, byte_o)),
            (masked_spgemm<PlusTimes<VT>>(a, b, m, bit_o)));
}

TEST(MSABitmapScheme, ComplementFallsBackCorrectly) {
  auto a = erdos_renyi<IT, VT>(80, 80, 5, 7);
  auto b = erdos_renyi<IT, VT>(80, 80, 5, 8);
  auto m = erdos_renyi<IT, VT>(80, 80, 7, 9);
  auto want =
      reference_masked_spgemm<PlusTimes<VT>>(a, b, m, MaskKind::kComplement);
  MaskedOptions o;
  o.algo = MaskedAlgo::kMSABitmap;
  o.kind = MaskKind::kComplement;
  auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
  EXPECT_TRUE(matrices_near(got, want));
}

TEST(GallopingInner, MatchesTwoPointer) {
  // Strongly asymmetric operands: short A rows against long B columns.
  auto a = erdos_renyi<IT, VT>(100, 400, 3, 11);
  auto b = erdos_renyi<IT, VT>(400, 100, 60, 12);
  auto m = erdos_renyi<IT, VT>(100, 100, 10, 13);
  MaskedOptions two_ptr;
  two_ptr.algo = MaskedAlgo::kInner;
  MaskedOptions gallop = two_ptr;
  gallop.inner_gallop = true;
  auto c1 = masked_spgemm<PlusTimes<VT>>(a, b, m, two_ptr);
  auto c2 = masked_spgemm<PlusTimes<VT>>(a, b, m, gallop);
  EXPECT_EQ(c1, c2);
  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  EXPECT_TRUE(matrices_near(c2, want));
}

TEST(GallopingInner, OppositeAsymmetryAndComplement) {
  auto a = erdos_renyi<IT, VT>(60, 80, 40, 14);  // long A rows
  auto b = erdos_renyi<IT, VT>(80, 60, 2, 15);   // short B columns
  auto m = erdos_renyi<IT, VT>(60, 60, 8, 16);
  MaskedOptions gallop;
  gallop.algo = MaskedAlgo::kInner;
  gallop.inner_gallop = true;
  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  EXPECT_TRUE(matrices_near(
      (masked_spgemm<PlusTimes<VT>>(a, b, m, gallop)), want));

  gallop.kind = MaskKind::kComplement;
  auto want_c =
      reference_masked_spgemm<PlusTimes<VT>>(a, b, m, MaskKind::kComplement);
  EXPECT_TRUE(matrices_near(
      (masked_spgemm<PlusTimes<VT>>(a, b, m, gallop)), want_c));
}

TEST(GallopingInner, TwoPhaseSymbolicAgrees) {
  auto a = erdos_renyi<IT, VT>(70, 70, 20, 17);
  auto b = erdos_renyi<IT, VT>(70, 70, 20, 18);
  auto m = erdos_renyi<IT, VT>(70, 70, 5, 19);
  MaskedOptions gallop;
  gallop.algo = MaskedAlgo::kInner;
  gallop.inner_gallop = true;
  gallop.phases = PhaseMode::kTwoPhase;
  MaskedOptions plain = gallop;
  plain.inner_gallop = false;
  EXPECT_EQ((masked_spgemm<PlusTimes<VT>>(a, b, m, gallop)),
            (masked_spgemm<PlusTimes<VT>>(a, b, m, plain)));
}

TEST(Extensions, SchemeNamesAndParsing) {
  EXPECT_STREQ(to_string(MaskedAlgo::kMSABitmap), "MSAB");
  EXPECT_EQ(algo_from_string("msab"), MaskedAlgo::kMSABitmap);
  EXPECT_EQ(algo_from_string("MSABitmap"), MaskedAlgo::kMSABitmap);
}

}  // namespace
}  // namespace msx
