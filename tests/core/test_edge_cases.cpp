// Degenerate and boundary inputs for every scheme.
#include <gtest/gtest.h>

#include "core/masked_spgemm.hpp"
#include "core/reference.hpp"
#include "gen/erdos_renyi.hpp"
#include "matrix/build.hpp"
#include "test_helpers.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;
using msx::testing::matrices_near;

class EdgeCasesP : public ::testing::TestWithParam<MaskedAlgo> {
 protected:
  MaskedOptions opts(MaskKind kind = MaskKind::kMask) const {
    MaskedOptions o;
    o.algo = GetParam();
    o.kind = kind;
    return o;
  }
};

TEST_P(EdgeCasesP, AllEmptyMatrices) {
  CSRMatrix<IT, VT> a(5, 7), b(7, 4), m(5, 4);
  auto c = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
  EXPECT_EQ(c.nrows(), 5);
  EXPECT_EQ(c.ncols(), 4);
  EXPECT_EQ(c.nnz(), 0u);
}

TEST_P(EdgeCasesP, ZeroDimensionMatrices) {
  CSRMatrix<IT, VT> a(0, 0), b(0, 0), m(0, 0);
  auto c = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
  EXPECT_EQ(c.nrows(), 0);
  EXPECT_EQ(c.nnz(), 0u);
}

TEST_P(EdgeCasesP, OneByOne) {
  auto a = csr_from_dense<IT, VT>({{3}});
  auto b = csr_from_dense<IT, VT>({{4}});
  auto m = csr_from_dense<IT, VT>({{1}});
  auto c = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
  ASSERT_EQ(c.nnz(), 1u);
  EXPECT_EQ(c.values()[0], 12.0);
}

TEST_P(EdgeCasesP, EmptyMaskMasked) {
  auto a = erdos_renyi<IT, VT>(30, 30, 4, 1);
  auto b = erdos_renyi<IT, VT>(30, 30, 4, 2);
  CSRMatrix<IT, VT> m(30, 30);
  auto c = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
  EXPECT_EQ(c.nnz(), 0u);
}

TEST_P(EdgeCasesP, EmptyAGivesEmptyOutput) {
  CSRMatrix<IT, VT> a(20, 20);
  auto b = erdos_renyi<IT, VT>(20, 20, 4, 3);
  auto m = erdos_renyi<IT, VT>(20, 20, 4, 4);
  for (auto kind : {MaskKind::kMask, MaskKind::kComplement}) {
    if (kind == MaskKind::kComplement && GetParam() == MaskedAlgo::kMCA) {
      continue;
    }
    auto c = masked_spgemm<PlusTimes<VT>>(a, b, m, opts(kind));
    EXPECT_EQ(c.nnz(), 0u);
  }
}

TEST_P(EdgeCasesP, EmptyBGivesEmptyOutput) {
  auto a = erdos_renyi<IT, VT>(20, 20, 4, 5);
  CSRMatrix<IT, VT> b(20, 20);
  auto m = erdos_renyi<IT, VT>(20, 20, 4, 6);
  auto c = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
  EXPECT_EQ(c.nnz(), 0u);
}

TEST_P(EdgeCasesP, SingleColumnOutput) {
  auto a = erdos_renyi<IT, VT>(25, 10, 3, 7);
  auto b = erdos_renyi<IT, VT>(10, 1, 1, 8);
  auto m = erdos_renyi<IT, VT>(25, 1, 1, 9);
  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
  EXPECT_TRUE(matrices_near(got, want));
}

TEST_P(EdgeCasesP, SingleRowTimesSingleColumn) {
  auto a = erdos_renyi<IT, VT>(1, 40, 10, 10);
  auto b = erdos_renyi<IT, VT>(40, 1, 1, 11);
  auto m = csr_from_dense<IT, VT>({{1}});
  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
  EXPECT_TRUE(matrices_near(got, want));
}

TEST_P(EdgeCasesP, FullyDenseMask) {
  const IT n = 25;
  std::vector<Triple<IT, VT>> full;
  for (IT i = 0; i < n; ++i) {
    for (IT j = 0; j < n; ++j) full.push_back({i, j, 1.0});
  }
  auto m = csr_from_triples<IT, VT>(n, n, full);
  auto a = erdos_renyi<IT, VT>(n, n, 5, 12);
  auto b = erdos_renyi<IT, VT>(n, n, 5, 13);
  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
  EXPECT_TRUE(matrices_near(got, want));
  EXPECT_EQ(got.nnz(), want.nnz());
}

TEST_P(EdgeCasesP, DiagonalMask) {
  const IT n = 30;
  std::vector<Triple<IT, VT>> diag;
  for (IT i = 0; i < n; ++i) diag.push_back({i, i, 1.0});
  auto m = csr_from_triples<IT, VT>(n, n, diag);
  auto a = erdos_renyi<IT, VT>(n, n, 6, 14);
  auto b = erdos_renyi<IT, VT>(n, n, 6, 15);
  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
  EXPECT_TRUE(matrices_near(got, want));
}

TEST_P(EdgeCasesP, NumericallyZeroSumsAreKept) {
  // Structural semantics: +1 and -1 contributions to the same output entry
  // sum to 0.0 but the entry must still exist.
  auto a = csr_from_dense<IT, VT>({{1, -1}});
  auto b = csr_from_dense<IT, VT>({{1}, {1}});
  auto m = csr_from_dense<IT, VT>({{1}});
  auto c = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
  ASSERT_EQ(c.nnz(), 1u);
  EXPECT_EQ(c.values()[0], 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, EdgeCasesP,
                         ::testing::ValuesIn(msx::testing::all_algos()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace msx
