// Randomized differential testing: many random (shape, density, seed)
// configurations, every scheme × phase × mask kind, all compared against the
// serial oracle and against plain-SpGEMM-then-mask. The parameter grid is
// deliberately irregular (non-power-of-two shapes, empty-row masks, near-
// empty inputs) to hit corner paths the structured suites do not.
#include <gtest/gtest.h>

#include "baseline/then_mask.hpp"
#include "core/masked_spgemm.hpp"
#include "core/reference.hpp"
#include "common/random.hpp"
#include "gen/erdos_renyi.hpp"
#include "matrix/build.hpp"
#include "test_helpers.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;
using msx::testing::matrices_near;

CSRMatrix<IT, VT> random_irregular(IT nrows, IT ncols, double fill,
                                   std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Triple<IT, VT>> t;
  const auto target = static_cast<std::size_t>(
      fill * static_cast<double>(nrows) * static_cast<double>(ncols));
  for (std::size_t k = 0; k < target; ++k) {
    t.push_back({static_cast<IT>(rng.next_below(
                     static_cast<std::uint64_t>(nrows))),
                 static_cast<IT>(rng.next_below(
                     static_cast<std::uint64_t>(ncols))),
                 rng.next_double() * 2.0 - 1.0});
  }
  return csr_from_triples<IT, VT>(nrows, ncols, std::move(t),
                                  DuplicatePolicy::kLast);
}

class FuzzDifferentialP : public ::testing::TestWithParam<int> {};

TEST_P(FuzzDifferentialP, AllSchemesAgainstTwoOracles) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Xoshiro256 shape_rng(seed * 7919);
  const IT m = static_cast<IT>(3 + shape_rng.next_below(97));
  const IT k = static_cast<IT>(3 + shape_rng.next_below(97));
  const IT n = static_cast<IT>(3 + shape_rng.next_below(97));
  const double fa = 0.002 + shape_rng.next_double() * 0.15;
  const double fb = 0.002 + shape_rng.next_double() * 0.15;
  const double fm = 0.002 + shape_rng.next_double() * 0.3;

  const auto a = random_irregular(m, k, fa, seed);
  const auto b = random_irregular(k, n, fb, seed + 1000);
  const auto mask = random_irregular(m, n, fm, seed + 2000);

  const auto oracle1 = reference_masked_spgemm<PlusTimes<VT>>(a, b, mask);
  const auto oracle2 = spgemm_then_mask<PlusTimes<VT>>(a, b, mask);
  ASSERT_TRUE(matrices_near(oracle2, oracle1, 1e-9))
      << "oracles disagree — harness bug";

  for (auto algo : msx::testing::all_algos()) {
    for (auto ph : msx::testing::all_phases()) {
      MaskedOptions o;
      o.algo = algo;
      o.phases = ph;
      auto c = masked_spgemm<PlusTimes<VT>>(a, b, mask, o);
      SCOPED_TRACE(scheme_name(algo, ph));
      EXPECT_TRUE(c.validate());
      EXPECT_TRUE(matrices_near(c, oracle1, 1e-9));
    }
  }

  const auto comp =
      reference_masked_spgemm<PlusTimes<VT>>(a, b, mask,
                                             MaskKind::kComplement);
  for (auto algo : msx::testing::complement_algos()) {
    MaskedOptions o;
    o.algo = algo;
    o.kind = MaskKind::kComplement;
    auto c = masked_spgemm<PlusTimes<VT>>(a, b, mask, o);
    SCOPED_TRACE(std::string(to_string(algo)) + "-comp");
    EXPECT_TRUE(matrices_near(c, comp, 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialP, ::testing::Range(1, 21));

// Aliasing: the same matrix serving as input(s) and mask simultaneously —
// the pattern every application here uses (TC: L,L,L; k-truss: A,A,A).
TEST(FuzzAliasing, SameMatrixEverywhere) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto a = random_irregular(60, 60, 0.05, seed);
    auto want = reference_masked_spgemm<PlusTimes<VT>>(a, a, a);
    for (auto algo : msx::testing::all_algos()) {
      MaskedOptions o;
      o.algo = algo;
      auto c = masked_spgemm<PlusTimes<VT>>(a, a, a, o);
      EXPECT_TRUE(matrices_near(c, want, 1e-9))
          << to_string(algo) << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace msx
