// Results must be bit-identical across thread counts and schedules: the
// row-parallel decomposition owns disjoint output rows, so no scheme may
// exhibit result nondeterminism.
#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "core/masked_spgemm.hpp"
#include "gen/rmat.hpp"
#include "test_helpers.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

TEST(Determinism, ThreadCountInvariance) {
  auto a = rmat<IT, VT>(8, 1);
  auto b = rmat<IT, VT>(8, 2);
  auto m = rmat<IT, VT>(8, 3);
  for (auto algo : msx::testing::all_algos()) {
    MaskedOptions o;
    o.algo = algo;
    o.threads = 1;
    auto serial = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
    for (int threads : {2, 4, 0}) {
      o.threads = threads;
      auto parallel = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
      EXPECT_EQ(serial, parallel)
          << to_string(algo) << " with " << threads << " threads";
    }
  }
}

TEST(Determinism, ScheduleInvariance) {
  auto a = rmat<IT, VT>(8, 4);
  auto b = rmat<IT, VT>(8, 5);
  auto m = rmat<IT, VT>(8, 6);
  MaskedOptions o;
  o.algo = MaskedAlgo::kHash;
  o.schedule = Schedule::kStatic;
  auto c_static = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
  o.schedule = Schedule::kDynamic;
  auto c_dynamic = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
  o.schedule = Schedule::kGuided;
  auto c_guided = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
  EXPECT_EQ(c_static, c_dynamic);
  EXPECT_EQ(c_static, c_guided);
}

TEST(Determinism, RepeatedCallsIdentical) {
  auto a = rmat<IT, VT>(7, 7);
  auto b = rmat<IT, VT>(7, 8);
  auto m = rmat<IT, VT>(7, 9);
  MaskedOptions o;
  o.algo = MaskedAlgo::kMSA;
  auto first = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_EQ(first, (masked_spgemm<PlusTimes<VT>>(a, b, m, o)));
  }
}

TEST(Determinism, ComplementThreadInvariance) {
  auto a = rmat<IT, VT>(7, 10);
  auto b = rmat<IT, VT>(7, 11);
  auto m = rmat<IT, VT>(7, 12);
  for (auto algo : msx::testing::complement_algos()) {
    MaskedOptions o;
    o.algo = algo;
    o.kind = MaskKind::kComplement;
    o.threads = 1;
    auto serial = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
    o.threads = 4;
    auto parallel = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
    EXPECT_EQ(serial, parallel) << to_string(algo);
  }
}

TEST(Determinism, ThreadOverrideRestoresGlobalSetting) {
  const int before = max_threads();
  auto a = rmat<IT, VT>(6, 13);
  MaskedOptions o;
  o.threads = 2;
  (void)masked_spgemm<PlusTimes<VT>>(a, a, a, o);
  EXPECT_EQ(max_threads(), before);
}

}  // namespace
}  // namespace msx
