// Delta rebind (streaming tentpole): apply_edge_delta's edit semantics, and
// MaskedPlan::apply_delta's contract — a patched plan is bit-identical to a
// cold plan built on the mutated graph, across every algorithm family, both
// phase modes, insert/delete/mixed batches, aliased operands, and deltas
// that touch empty rows — while retained state (2P rowptr, partition)
// survives with only the touched portion recomputed.
#include "core/delta.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "core/masked_spgemm.hpp"
#include "core/plan.hpp"
#include "gen/erdos_renyi.hpp"
#include "matrix/build.hpp"
#include "test_helpers.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;
using SR = PlusTimes<VT>;

CSRMatrix<IT, VT> from_triplets(IT nrows, IT ncols,
                                std::vector<Triple<IT, VT>> entries) {
  return csr_from_triples<IT, VT>(nrows, ncols, std::move(entries),
                                  DuplicatePolicy::kError);
}

// Reference: replay the delta's documented semantics against a coordinate
// map (deletes first, then inserts in order, last-wins).
CSRMatrix<IT, VT> naive_apply(const CSRMatrix<IT, VT>& m,
                              const EdgeDelta<IT, VT>& d) {
  std::map<std::pair<IT, IT>, VT> coords;
  const auto rp = m.rowptr();
  const auto ci = m.colidx();
  const auto va = m.values();
  for (IT i = 0; i < m.nrows(); ++i) {
    for (auto p = static_cast<std::size_t>(rp[i]);
         p < static_cast<std::size_t>(rp[i + 1]); ++p) {
      coords[{i, ci[p]}] = va[p];
    }
  }
  for (std::size_t k = 0; k < d.del_row.size(); ++k) {
    coords.erase({d.del_row[k], d.del_col[k]});
  }
  for (std::size_t k = 0; k < d.ins_row.size(); ++k) {
    coords[{d.ins_row[k], d.ins_col[k]}] = d.ins_val[k];
  }
  std::vector<Triple<IT, VT>> triples;
  for (const auto& [rc, v] : coords) {
    triples.push_back({rc.first, rc.second, v});
  }
  return csr_from_triples<IT, VT>(m.nrows(), m.ncols(), std::move(triples));
}

TEST(ApplyEdgeDelta, EditSemantics) {
  const auto m = from_triplets(4, 4, {{0, 1, 1.0}, {0, 3, 2.0}, {2, 2, 3.0}});

  // Insert into an empty row, overwrite an existing entry, delete another.
  EdgeDelta<IT, VT> d;
  d.insert(1, 0, 9.0);   // row 1 was empty
  d.insert(0, 1, 5.0);   // overwrite
  d.erase(2, 2);         // delete existing
  d.erase(3, 3);         // delete absent: no-op
  const auto got = apply_edge_delta(m, d);
  EXPECT_TRUE(got == from_triplets(4, 4, {{0, 1, 5.0},
                                          {0, 3, 2.0},
                                          {1, 0, 9.0}}));

  // Same coordinate, delete then insert: the insert wins (deletes first).
  EdgeDelta<IT, VT> both;
  both.erase(0, 1);
  both.insert(0, 1, 7.0);
  EXPECT_TRUE(apply_edge_delta(m, both) ==
              from_triplets(4, 4, {{0, 1, 7.0}, {0, 3, 2.0}, {2, 2, 3.0}}));

  // Duplicate inserts: last wins.
  EdgeDelta<IT, VT> dup;
  dup.insert(3, 0, 1.0);
  dup.insert(3, 0, 2.0);
  EXPECT_DOUBLE_EQ(apply_edge_delta(m, dup).values().back(), 2.0);

  // Empty delta: structural copy.
  EXPECT_TRUE(apply_edge_delta(m, EdgeDelta<IT, VT>{}) == m);
}

TEST(ApplyEdgeDelta, ValidatesEndpointsAndShape) {
  const auto m = from_triplets(3, 3, {{0, 0, 1.0}});
  EdgeDelta<IT, VT> oob;
  oob.insert(3, 0, 1.0);
  EXPECT_THROW(apply_edge_delta(m, oob), std::invalid_argument);
  EdgeDelta<IT, VT> neg;
  neg.erase(0, -1);
  EXPECT_THROW(apply_edge_delta(m, neg), std::invalid_argument);
  EdgeDelta<IT, VT> ragged;
  ragged.ins_row.push_back(0);  // parallel arrays out of step
  EXPECT_THROW(apply_edge_delta(m, ragged), std::invalid_argument);
}

TEST(ApplyEdgeDelta, MatchesNaiveReplayOnRandomBatches) {
  const auto m = erdos_renyi<IT, VT>(60, 50, 5, 77);
  std::uint64_t rng = 1234567;
  auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };
  for (int round = 0; round < 8; ++round) {
    EdgeDelta<IT, VT> d;
    for (int k = 0; k < 40; ++k) {
      const IT r = static_cast<IT>(next() % 60);
      const IT c = static_cast<IT>(next() % 50);
      if (next() % 3 == 0) {
        d.erase(r, c);
      } else {
        d.insert(r, c, static_cast<VT>(1 + next() % 9));
      }
    }
    const auto got = apply_edge_delta(m, d);
    EXPECT_TRUE(got == naive_apply(m, d)) << "round " << round;
  }
}

TEST(DeltaTouchedRows, SortedUniqueUnionOfBothSides) {
  EdgeDelta<IT, VT> d;
  d.insert(5, 0, 1.0);
  d.erase(2, 1);
  d.insert(2, 3, 1.0);
  d.erase(9, 9);
  const auto rows = delta_touched_rows(d);
  EXPECT_EQ(rows, (std::vector<IT>{2, 5, 9}));
}

// ---------------------------------------------------------------------------

class DeltaPlanP
    : public ::testing::TestWithParam<std::tuple<MaskedAlgo, PhaseMode>> {
 protected:
  MaskedOptions opts(MaskKind kind = MaskKind::kMask) const {
    MaskedOptions o;
    o.algo = std::get<0>(GetParam());
    o.phases = std::get<1>(GetParam());
    o.kind = kind;
    return o;
  }

  // Insert-only / delete-only / mixed batches over B, including a row B has
  // empty and entries the mask does/doesn't cover.
  static std::vector<EdgeDelta<IT, VT>> batches(const CSRMatrix<IT, VT>& b) {
    std::vector<EdgeDelta<IT, VT>> out(3);
    // Insert-only: a fresh entry, an overwrite, and a previously empty row.
    out[0].insert(3, 7, 2.5);
    out[0].insert(b.nrows() - 1, 0, 1.5);
    out[0].insert(10, b.ncols() - 1, 4.0);
    // Delete-only: existing entries (first two stored edges) plus a no-op.
    const auto rp = b.rowptr();
    const auto ci = b.colidx();
    for (IT i = 0, found = 0; i < b.nrows() && found < 2; ++i) {
      if (rp[i + 1] > rp[i]) {
        out[1].erase(i, ci[static_cast<std::size_t>(rp[i])]);
        ++found;
      }
    }
    out[1].erase(0, b.ncols() - 1);
    // Mixed, with delete+insert on one coordinate.
    out[2].insert(5, 5, 9.0);
    out[2].erase(5, 5);
    out[2].insert(5, 5, 3.0);
    out[2].insert(17, 2, 1.0);
    for (IT i = 0; i < b.nrows(); ++i) {
      if (rp[i + 1] > rp[i]) {
        out[2].erase(i, ci[static_cast<std::size_t>(rp[i + 1] - 1)]);
        break;
      }
    }
    return out;
  }
};

TEST_P(DeltaPlanP, PatchedPlanBitIdenticalToColdPlan) {
  const auto a = erdos_renyi<IT, VT>(80, 90, 6, 11);
  auto b = erdos_renyi<IT, VT>(90, 70, 5, 12);
  const auto m = erdos_renyi<IT, VT>(80, 70, 9, 13);

  auto plan = masked_plan<SR>(a, b, m, opts());
  (void)plan.execute();  // warm every cache the options build

  for (const auto& d : batches(b)) {
    const auto st = plan.apply_delta(d);
    EXPECT_EQ(st.rows_touched, delta_touched_rows(d).size());
    b = apply_edge_delta(b, d);  // track the live graph
    const auto want = masked_plan<SR>(a, b, m, opts()).execute();
    EXPECT_TRUE(plan.execute() == want);
  }
}

TEST_P(DeltaPlanP, AliasedAndComplementedDeltasMatchColdPlans) {
  if (std::get<0>(GetParam()) == MaskedAlgo::kMCA) {
    GTEST_SKIP() << "MCA has no complement support";
  }
  // k-truss shape: one square matrix is A, B and M — a delta touches all
  // three roles at once (b_is_a and mask_is_b paths).
  auto g = erdos_renyi<IT, VT>(70, 70, 6, 21);
  auto plan = masked_plan<SR>(g, g, g, opts(MaskKind::kComplement));
  (void)plan.execute();

  for (const auto& d : batches(g)) {
    plan.apply_delta(d);
    g = apply_edge_delta(g, d);
    const auto want =
        masked_plan<SR>(g, g, g, opts(MaskKind::kComplement)).execute();
    EXPECT_TRUE(plan.execute() == want);
  }
}

TEST_P(DeltaPlanP, EmptyDeltaIsANoOp) {
  const auto a = erdos_renyi<IT, VT>(40, 40, 5, 31);
  const auto b = erdos_renyi<IT, VT>(40, 40, 5, 32);
  const auto m = erdos_renyi<IT, VT>(40, 40, 7, 33);
  auto plan = masked_plan<SR>(a, b, m, opts());
  const auto want = plan.execute();
  const auto st = plan.apply_delta(EdgeDelta<IT, VT>{});
  EXPECT_EQ(st.rows_touched, 0u);
  EXPECT_TRUE(plan.execute() == want);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, DeltaPlanP,
    ::testing::Combine(::testing::ValuesIn(msx::testing::all_algos()),
                       ::testing::ValuesIn(msx::testing::all_phases())),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             to_string(std::get<1>(info.param));
    });

// The retained-state side of the contract: under two-phase + flop-balanced
// scheduling, a small delta keeps the symbolic rowptr and the partition,
// re-running symbolic only for affected output rows and refreshing widths
// only in intersecting blocks.
TEST(DeltaPlanState, SmallDeltaKeepsWarmStateAndSkipsUntouchedBlocks) {
  const IT n = 4000;
  // A banded A keeps the touched-output set local: output row i references
  // only B rows i-2..i+2, so a delta on B's first rows cannot reach blocks
  // covering the rest of the matrix. (With a random A every output row
  // references touched B rows somewhere and every block intersects.)
  std::vector<Triple<IT, VT>> band;
  for (IT i = 0; i < n; ++i) {
    for (IT j = std::max<IT>(0, i - 2); j <= std::min<IT>(n - 1, i + 2);
         ++j) {
      band.push_back({i, j, 1.0});
    }
  }
  const auto a = csr_from_triples<IT, VT>(n, n, std::move(band));
  auto b = erdos_renyi<IT, VT>(n, n, 8, 42);
  const auto m = erdos_renyi<IT, VT>(n, n, 12, 43);

  MaskedOptions o;
  o.algo = MaskedAlgo::kMSA;
  o.phases = PhaseMode::kTwoPhase;
  o.schedule = Schedule::kFlopBalanced;
  auto plan = masked_plan<SR>(a, b, m, o);
  (void)plan.execute();  // warm: builds the 2P rowptr and the partition

  // ~0.5% of B's rows, all at the front of the matrix.
  EdgeDelta<IT, VT> d;
  for (IT r = 0; r < n / 200; ++r) {
    d.insert(r, r * 13 % n, 1.0);
  }
  const auto st = plan.apply_delta(d);

  EXPECT_TRUE(st.symbolic_patched);
  EXPECT_TRUE(st.partition_kept);
  EXPECT_GT(st.blocks_total, 1);
  // Untouched blocks provably skipped the width refresh...
  EXPECT_LT(st.blocks_refreshed, st.blocks_total);
  // ...and untouched output rows skipped re-symbolic.
  EXPECT_GT(st.out_rows_resymbolic, 0u);
  EXPECT_LT(st.out_rows_resymbolic, static_cast<std::size_t>(n) / 2);

  b = apply_edge_delta(b, d);
  const auto want = masked_plan<SR>(a, b, m, o).execute();
  EXPECT_TRUE(plan.execute() == want);
}

}  // namespace
}  // namespace msx
