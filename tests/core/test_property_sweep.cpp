// Property-based sweep: for a parameter grid of (size, input degree, mask
// degree, seed), every scheme must satisfy the structural invariants and
// agree with the oracle. This is the broad net that catches accumulator
// reset bugs, bound miscalculations and sortedness violations.
#include <gtest/gtest.h>

#include <tuple>

#include "core/masked_spgemm.hpp"
#include "core/reference.hpp"
#include "gen/erdos_renyi.hpp"
#include "test_helpers.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;
using msx::testing::matrices_near;
using msx::testing::pattern_disjoint_from_mask;
using msx::testing::pattern_subset_of_mask;

// (n, input degree, mask degree, seed)
using SweepParam = std::tuple<int, int, int, int>;

class PropertySweepP : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PropertySweepP, AllSchemesAllInvariants) {
  const auto [n, din, dm, seed] = GetParam();
  const IT nn = static_cast<IT>(n);
  auto a = erdos_renyi<IT, VT>(nn, nn, static_cast<IT>(din),
                               static_cast<std::uint64_t>(seed));
  auto b = erdos_renyi<IT, VT>(nn, nn, static_cast<IT>(din),
                               static_cast<std::uint64_t>(seed) + 100);
  auto m = erdos_renyi<IT, VT>(nn, nn, static_cast<IT>(dm),
                               static_cast<std::uint64_t>(seed) + 200);

  const auto want_mask = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  const auto want_comp =
      reference_masked_spgemm<PlusTimes<VT>>(a, b, m, MaskKind::kComplement);

  for (auto algo : msx::testing::all_algos()) {
    for (auto ph : msx::testing::all_phases()) {
      MaskedOptions o;
      o.algo = algo;
      o.phases = ph;
      auto c = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
      SCOPED_TRACE(scheme_name(algo, ph));
      EXPECT_TRUE(c.validate());
      EXPECT_TRUE(pattern_subset_of_mask(c, m));
      EXPECT_TRUE(matrices_near(c, want_mask));
    }
  }
  for (auto algo : msx::testing::complement_algos()) {
    for (auto ph : msx::testing::all_phases()) {
      MaskedOptions o;
      o.algo = algo;
      o.phases = ph;
      o.kind = MaskKind::kComplement;
      auto c = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
      SCOPED_TRACE(scheme_name(algo, ph) + "-comp");
      EXPECT_TRUE(c.validate());
      EXPECT_TRUE(pattern_disjoint_from_mask(c, m));
      EXPECT_TRUE(matrices_near(c, want_comp));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PropertySweepP,
    ::testing::Values(
        // n, input degree, mask degree, seed — spanning the Fig. 7 regimes.
        std::make_tuple(32, 2, 2, 1), std::make_tuple(32, 8, 2, 2),
        std::make_tuple(32, 2, 8, 3), std::make_tuple(64, 4, 16, 4),
        std::make_tuple(64, 16, 4, 5), std::make_tuple(64, 16, 16, 6),
        std::make_tuple(128, 1, 1, 7), std::make_tuple(128, 8, 32, 8),
        std::make_tuple(128, 32, 8, 9), std::make_tuple(96, 12, 12, 10),
        std::make_tuple(200, 3, 40, 11), std::make_tuple(200, 40, 3, 12)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_din" +
             std::to_string(std::get<1>(info.param)) + "_dm" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace msx
