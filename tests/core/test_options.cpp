// Enum round-trips, scheme-name golden strings and option validation.
#include "core/options.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace msx {
namespace {

std::vector<MaskedAlgo> every_algo() {
  return {MaskedAlgo::kMSA,    MaskedAlgo::kHash,      MaskedAlgo::kMCA,
          MaskedAlgo::kHeap,   MaskedAlgo::kHeapDot,   MaskedAlgo::kInner,
          MaskedAlgo::kHybrid, MaskedAlgo::kMSABitmap, MaskedAlgo::kAuto};
}

TEST(Options, AlgoStringRoundTripsForEveryValue) {
  for (MaskedAlgo a : every_algo()) {
    EXPECT_EQ(algo_from_string(to_string(a)), a) << to_string(a);
  }
}

TEST(Options, AlgoParsingIsCaseInsensitiveWithAliases) {
  EXPECT_EQ(algo_from_string("HEAPDOT"), MaskedAlgo::kHeapDot);
  EXPECT_EQ(algo_from_string("Msa"), MaskedAlgo::kMSA);
  EXPECT_EQ(algo_from_string("msab"), MaskedAlgo::kMSABitmap);
  EXPECT_EQ(algo_from_string("msabitmap"), MaskedAlgo::kMSABitmap);
  EXPECT_THROW(algo_from_string("notanalgo"), std::invalid_argument);
}

TEST(Options, SchemeNameGoldenStrings) {
  EXPECT_EQ(scheme_name(MaskedAlgo::kMSA, PhaseMode::kOnePhase), "MSA-1P");
  EXPECT_EQ(scheme_name(MaskedAlgo::kHash, PhaseMode::kTwoPhase), "Hash-2P");
  EXPECT_EQ(scheme_name(MaskedAlgo::kMCA, PhaseMode::kOnePhase), "MCA-1P");
  EXPECT_EQ(scheme_name(MaskedAlgo::kHeap, PhaseMode::kTwoPhase), "Heap-2P");
  EXPECT_EQ(scheme_name(MaskedAlgo::kHeapDot, PhaseMode::kOnePhase),
            "HeapDot-1P");
  EXPECT_EQ(scheme_name(MaskedAlgo::kInner, PhaseMode::kTwoPhase),
            "Inner-2P");
  EXPECT_EQ(scheme_name(MaskedAlgo::kHybrid, PhaseMode::kOnePhase),
            "Hybrid-1P");
  EXPECT_EQ(scheme_name(MaskedAlgo::kMSABitmap, PhaseMode::kOnePhase),
            "MSAB-1P");
  EXPECT_EQ(scheme_name(MaskedAlgo::kAuto, PhaseMode::kTwoPhase), "Auto-2P");
}

TEST(Options, ScheduleStringRoundTripsForEveryValue) {
  for (Schedule s : {Schedule::kAuto, Schedule::kStatic, Schedule::kDynamic,
                     Schedule::kGuided, Schedule::kFlopBalanced}) {
    EXPECT_EQ(schedule_from_string(to_string(s)), s) << to_string(s);
  }
}

TEST(Options, ScheduleParsingIsCaseInsensitiveWithAliases) {
  EXPECT_EQ(schedule_from_string("STATIC"), Schedule::kStatic);
  EXPECT_EQ(schedule_from_string("FlopBalanced"), Schedule::kFlopBalanced);
  EXPECT_EQ(schedule_from_string("flop-balanced"), Schedule::kFlopBalanced);
  EXPECT_THROW(schedule_from_string("roundrobin"), std::invalid_argument);
}

TEST(Options, CostModelStringRoundTripsForEveryValue) {
  for (CostModel c :
       {CostModel::kAuto, CostModel::kFlops, CostModel::kMaskNnz}) {
    EXPECT_EQ(cost_model_from_string(to_string(c)), c) << to_string(c);
  }
}

TEST(Options, CostModelParsingIsCaseInsensitiveWithAliases) {
  EXPECT_EQ(cost_model_from_string("FLOPS"), CostModel::kFlops);
  EXPECT_EQ(cost_model_from_string("mask-nnz"), CostModel::kMaskNnz);
  EXPECT_THROW(cost_model_from_string("rows"), std::invalid_argument);
}

TEST(Options, ValidateRejectsNegativeChunk) {
  MaskedOptions o;
  o.chunk = -1;
  EXPECT_THROW(validate_masked_options(o), std::invalid_argument);
  o.chunk = 0;
  EXPECT_NO_THROW(validate_masked_options(o));
  o.chunk = 128;
  EXPECT_NO_THROW(validate_masked_options(o));
}

TEST(Options, PhaseAndKindToString) {
  EXPECT_STREQ(to_string(PhaseMode::kOnePhase), "1P");
  EXPECT_STREQ(to_string(PhaseMode::kTwoPhase), "2P");
  EXPECT_STREQ(to_string(MaskKind::kMask), "mask");
  EXPECT_STREQ(to_string(MaskKind::kComplement), "complement");
}

TEST(Options, ValidateRejectsHeapDotWithExplicitFiniteNinspect) {
  MaskedOptions o;
  o.algo = MaskedAlgo::kHeapDot;
  o.heap_ninspect = 5;
  EXPECT_THROW(validate_masked_options(o), std::invalid_argument);
}

TEST(Options, ValidateAcceptsConsistentConfigurations) {
  MaskedOptions dot;
  dot.algo = MaskedAlgo::kHeapDot;
  EXPECT_NO_THROW(validate_masked_options(dot));  // default ninspect
  dot.heap_ninspect = kNInspectInfinity;
  EXPECT_NO_THROW(validate_masked_options(dot));  // explicit ∞

  MaskedOptions heap;
  heap.algo = MaskedAlgo::kHeap;
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                        kNInspectInfinity}) {
    heap.heap_ninspect = n;
    EXPECT_NO_THROW(validate_masked_options(heap));
  }
}

}  // namespace
}  // namespace msx
