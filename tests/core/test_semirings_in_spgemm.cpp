// Masked SpGEMM over non-arithmetic semirings: the kernels must honour the
// semiring's add/mul exactly (the applications depend on plus-pair; graph
// algorithms at large use min-plus and boolean semirings).
#include <gtest/gtest.h>

#include "core/masked_spgemm.hpp"
#include "core/reference.hpp"
#include "gen/erdos_renyi.hpp"
#include "matrix/build.hpp"
#include "semiring/semirings.hpp"
#include "test_helpers.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;
using msx::testing::matrices_near;

template <class SR>
void check_all_algos(const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
                     const CSRMatrix<IT, VT>& m) {
  auto want = reference_masked_spgemm<SR>(a, b, m);
  for (auto algo : msx::testing::all_algos()) {
    MaskedOptions o;
    o.algo = algo;
    auto got = masked_spgemm<SR>(a, b, m, o);
    // Tolerant comparison: schemes sum products in different orders, so
    // floating-point results may differ in the last bits (exact for
    // integer semirings).
    EXPECT_TRUE(matrices_near(got, want, 1e-9)) << to_string(algo);
  }
}

TEST(SemiringSpgemm, PlusPairCountsContributions) {
  auto a = erdos_renyi<IT, VT>(80, 80, 7, 1);
  auto b = erdos_renyi<IT, VT>(80, 80, 7, 2);
  auto m = erdos_renyi<IT, VT>(80, 80, 9, 3);
  check_all_algos<PlusPair<std::int64_t>>(a, b, m);
}

TEST(SemiringSpgemm, PlusFirstPicksAValues) {
  auto a = erdos_renyi<IT, VT>(60, 60, 5, 4);
  auto b = erdos_renyi<IT, VT>(60, 60, 5, 5);
  auto m = erdos_renyi<IT, VT>(60, 60, 7, 6);
  check_all_algos<PlusFirst<double>>(a, b, m);
}

TEST(SemiringSpgemm, PlusSecondPicksBValues) {
  auto a = erdos_renyi<IT, VT>(60, 60, 5, 7);
  auto b = erdos_renyi<IT, VT>(60, 60, 5, 8);
  auto m = erdos_renyi<IT, VT>(60, 60, 7, 9);
  check_all_algos<PlusSecond<double>>(a, b, m);
}

TEST(SemiringSpgemm, MinPlusShortestHop) {
  // min-plus over positive weights: masked one-hop relaxation.
  ErdosRenyiOptions wopts;
  wopts.value_min = 1.0;
  wopts.value_max = 10.0;
  auto a = erdos_renyi<IT, VT>(50, 50, 5, 10, wopts);
  auto b = erdos_renyi<IT, VT>(50, 50, 5, 11, wopts);
  auto m = erdos_renyi<IT, VT>(50, 50, 8, 12);
  auto want = reference_masked_spgemm<MinPlus<double>>(a, b, m);
  for (auto algo : msx::testing::all_algos()) {
    MaskedOptions o;
    o.algo = algo;
    auto got = masked_spgemm<MinPlus<double>>(a, b, m, o);
    EXPECT_TRUE(matrices_near(got, want)) << to_string(algo);
  }
}

TEST(SemiringSpgemm, PlusPairOnTriangleExample) {
  // Hand-checked: path 0-1-2 plus chord 0-2 => wedge counting.
  auto g = csr_from_dense<IT, VT>({
      {0, 1, 1},
      {1, 0, 1},
      {1, 1, 0},
  });
  // (G·G)(0,2) over plus-pair counts common neighbours of 0 and 2 = 1.
  auto c = masked_spgemm<PlusPair<std::int64_t>>(g, g, g);
  // mask = G: entries only on edges; each edge of the triangle has exactly
  // one wedge through the third vertex.
  ASSERT_EQ(c.nnz(), 6u);
  for (auto v : c.values()) EXPECT_EQ(v, 1);
}

TEST(SemiringSpgemm, SemiringValueTypeDiffersFromMatrixType) {
  // double matrices, integer output semiring.
  auto a = erdos_renyi<IT, VT>(40, 40, 4, 13);
  auto b = erdos_renyi<IT, VT>(40, 40, 4, 14);
  auto m = erdos_renyi<IT, VT>(40, 40, 6, 15);
  auto c = masked_spgemm<PlusPair<int>>(a, b, m);
  static_assert(std::is_same_v<decltype(c)::value_type, int>);
  for (int v : c.values()) EXPECT_GE(v, 1);
}

}  // namespace
}  // namespace msx
