// Unit tests for the flop-balanced row partition (core/partition.hpp):
// boundary invariants, degenerate shapes (empty matrix, rows ≪ blocks), hub
// isolation and the cost-driven build path.
#include "core/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "gen/rmat.hpp"
#include "matrix/csr.hpp"

namespace msx {
namespace {

std::vector<std::uint64_t> prefix_of(const std::vector<std::uint64_t>& costs) {
  std::vector<std::uint64_t> prefix(costs.size() + 1, 0);
  std::partial_sum(costs.begin(), costs.end(), prefix.begin() + 1);
  return prefix;
}

// Every partition must cover [0, nrows) with strictly increasing boundaries.
void expect_valid(const RowPartition& part, std::int64_t nrows) {
  ASSERT_FALSE(part.block_start.empty());
  EXPECT_EQ(part.block_start.front(), 0);
  EXPECT_EQ(part.rows(), nrows);
  for (int b = 0; b < part.blocks(); ++b) {
    EXPECT_LT(part.block_start[static_cast<std::size_t>(b)],
              part.block_start[static_cast<std::size_t>(b) + 1])
        << "empty block " << b;
  }
}

std::uint64_t block_cost(const std::vector<std::uint64_t>& prefix,
                         const RowPartition& part, int b) {
  return prefix[static_cast<std::size_t>(
             part.block_start[static_cast<std::size_t>(b) + 1])] -
         prefix[static_cast<std::size_t>(
             part.block_start[static_cast<std::size_t>(b)])];
}

TEST(Partition, EmptyMatrixYieldsZeroBlocks) {
  const std::vector<std::uint64_t> prefix{0};
  const auto part = partition_from_cost_prefix(prefix, 8);
  EXPECT_EQ(part.blocks(), 0);
  EXPECT_EQ(part.rows(), 0);
}

TEST(Partition, RowsFewerThanBlocksGetOneRowEach) {
  const auto prefix = prefix_of({5, 1, 3});
  const auto part = partition_from_cost_prefix(prefix, 64);
  expect_valid(part, 3);
  EXPECT_EQ(part.blocks(), 3);
  for (int b = 0; b < 3; ++b) {
    EXPECT_EQ(part.block_start[static_cast<std::size_t>(b)], b);
  }
}

TEST(Partition, UniformCostsSplitEvenly) {
  const auto prefix = prefix_of(std::vector<std::uint64_t>(128, 1));
  const auto part = partition_from_cost_prefix(prefix, 8);
  expect_valid(part, 128);
  ASSERT_EQ(part.blocks(), 8);
  for (int b = 0; b < 8; ++b) {
    EXPECT_EQ(block_cost(prefix, part, b), 16u);
  }
}

TEST(Partition, ZeroTotalCostFallsBackToEvenRowSplit) {
  const auto prefix = prefix_of(std::vector<std::uint64_t>(100, 0));
  const auto part = partition_from_cost_prefix(prefix, 4);
  expect_valid(part, 100);
  ASSERT_EQ(part.blocks(), 4);
  for (int b = 0; b < 4; ++b) {
    EXPECT_EQ(part.block_start[static_cast<std::size_t>(b)], 25 * b);
  }
}

TEST(Partition, LeadingHubRowIsIsolated) {
  // One row carries ~all the cost; it must land in a block of its own
  // instead of dragging a static-chunk's worth of neighbours with it.
  std::vector<std::uint64_t> costs(100, 1);
  costs[0] = 1'000'000;
  const auto prefix = prefix_of(costs);
  const auto part = partition_from_cost_prefix(prefix, 8);
  expect_valid(part, 100);
  ASSERT_EQ(part.blocks(), 8);
  EXPECT_EQ(part.block_start[1], 1);  // block 0 is exactly the hub
}

TEST(Partition, InteriorHubRowBoundsEveryOtherBlock) {
  std::vector<std::uint64_t> costs(100, 1);
  costs[57] = 1'000'000;
  const auto prefix = prefix_of(costs);
  const auto part = partition_from_cost_prefix(prefix, 10);
  expect_valid(part, 100);
  ASSERT_EQ(part.blocks(), 10);
  // The hub's block dominates by construction; no other block may carry
  // more than the ideal per-block share of the remaining cost plus one row.
  const std::uint64_t hub = costs[57];
  int hub_block = -1;
  for (int b = 0; b < part.blocks(); ++b) {
    if (part.block_start[static_cast<std::size_t>(b)] <= 57 &&
        57 < part.block_start[static_cast<std::size_t>(b) + 1]) {
      hub_block = b;
    }
  }
  ASSERT_NE(hub_block, -1);
  for (int b = 0; b < part.blocks(); ++b) {
    if (b == hub_block) continue;
    EXPECT_LT(block_cost(prefix, part, b), hub) << "block " << b;
  }
}

TEST(Partition, TargetBlocksScaleWithThreads) {
  EXPECT_EQ(partition_target_blocks(1), 8);
  EXPECT_EQ(partition_target_blocks(16), 128);
  EXPECT_EQ(partition_target_blocks(0), 8);   // clamped
  EXPECT_EQ(partition_target_blocks(-3), 8);  // clamped
}

TEST(Partition, BuildFromCostCallbackCoversAllRows) {
  using IT = std::int32_t;
  const IT nrows = 1000;
  const auto part = build_row_partition(
      nrows, 16, [](IT i) { return static_cast<std::size_t>(i % 7); });
  expect_valid(part, nrows);
  EXPECT_LE(part.blocks(), 16);
  EXPECT_GE(part.blocks(), 1);
}

TEST(Partition, SkewedGraphPartitionIsBalancedByCostNotRows) {
  using IT = std::int32_t;
  using VT = double;
  const auto a = rmat<IT, VT>(10, 42);
  std::vector<std::uint64_t> costs(static_cast<std::size_t>(a.nrows()));
  for (IT i = 0; i < a.nrows(); ++i) {
    costs[static_cast<std::size_t>(i)] =
        static_cast<std::uint64_t>(a.row_nnz(i));
  }
  const auto prefix = prefix_of(costs);
  const auto part = partition_from_cost_prefix(prefix, 32);
  expect_valid(part, a.nrows());
  // No block may exceed the ideal share by more than the largest single row
  // (contiguity cannot split a row).
  const std::uint64_t total = prefix.back();
  const std::uint64_t max_row =
      *std::max_element(costs.begin(), costs.end());
  const std::uint64_t ideal =
      total / static_cast<std::uint64_t>(part.blocks()) + 1;
  for (int b = 0; b < part.blocks(); ++b) {
    EXPECT_LE(block_cost(prefix, part, b), ideal + max_row) << "block " << b;
  }
}

TEST(Partition, BuildWithSerialContextMatchesOpenMP) {
  const auto cost = [](std::int64_t i) {
    return static_cast<std::uint64_t>(1 + (i * 7) % 13);
  };
  const auto omp_part =
      build_row_partition<std::int64_t>(400, 16, cost, ExecContext::openmp());
  const auto serial_part =
      build_row_partition<std::int64_t>(400, 16, cost, ExecContext::serial());
  EXPECT_EQ(omp_part.block_start, serial_part.block_start);
  expect_valid(serial_part, 400);
}

TEST(Partition, BlockWidthsAreBlockwiseMaxima) {
  auto part = build_row_partition<std::int64_t>(
      100, 8, [](std::int64_t) { return std::uint64_t{1}; });
  expect_valid(part, 100);
  // Per-row width: rows 0..49 touch up to column i+1; rows 50+ touch 90.
  const auto width = [](std::int64_t i) {
    return i < 50 ? i + 1 : std::int64_t{90};
  };
  compute_block_widths(part, ExecContext::serial(), width);
  ASSERT_EQ(static_cast<int>(part.block_width.size()), part.blocks());
  for (int b = 0; b < part.blocks(); ++b) {
    std::int64_t expect = 0;
    for (std::int64_t i = part.block_start[static_cast<std::size_t>(b)];
         i < part.block_start[static_cast<std::size_t>(b) + 1]; ++i) {
      expect = std::max(expect, width(i));
    }
    EXPECT_EQ(part.block_width[static_cast<std::size_t>(b)], expect)
        << "block " << b;
  }
  // Invalidation drops the widths with the boundaries.
  PartitionCache cache;
  cache.partition = part;
  cache.valid = true;
  cache.invalidate();
  EXPECT_TRUE(cache.partition.block_start.empty());
  EXPECT_TRUE(cache.partition.block_width.empty());
}

}  // namespace
}  // namespace msx
