// Correctness of every masked-SpGEMM scheme against the serial reference
// oracle, over a grid of inputs (TEST_P sweep: algorithm × phase mode).
#include "core/masked_spgemm.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "core/reference.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "matrix/build.hpp"
#include "test_helpers.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;
using msx::testing::matrices_near;
using msx::testing::pattern_subset_of_mask;

class MaskedSpgemmP
    : public ::testing::TestWithParam<std::tuple<MaskedAlgo, PhaseMode>> {
 protected:
  MaskedOptions opts() const {
    MaskedOptions o;
    o.algo = std::get<0>(GetParam());
    o.phases = std::get<1>(GetParam());
    return o;
  }
};

TEST_P(MaskedSpgemmP, MatchesReferenceOnSquareER) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto a = erdos_renyi<IT, VT>(150, 150, 8, seed);
    auto b = erdos_renyi<IT, VT>(150, 150, 8, seed + 10);
    auto m = erdos_renyi<IT, VT>(150, 150, 12, seed + 20);
    auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
    auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
    EXPECT_TRUE(matrices_near(got, want)) << "seed " << seed;
    EXPECT_TRUE(got.validate());
  }
}

TEST_P(MaskedSpgemmP, MatchesReferenceOnRectangular) {
  auto a = erdos_renyi<IT, VT>(60, 90, 7, 4);
  auto b = erdos_renyi<IT, VT>(90, 40, 5, 5);
  auto m = erdos_renyi<IT, VT>(60, 40, 9, 6);
  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
  EXPECT_TRUE(matrices_near(got, want));
}

TEST_P(MaskedSpgemmP, MatchesReferenceOnSkewedRmat) {
  auto a = rmat<IT, VT>(8, 3);
  auto b = rmat<IT, VT>(8, 4);
  auto m = rmat<IT, VT>(8, 5);
  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
  EXPECT_TRUE(matrices_near(got, want));
}

TEST_P(MaskedSpgemmP, OutputPatternSubsetOfMask) {
  auto a = erdos_renyi<IT, VT>(100, 100, 10, 7);
  auto b = erdos_renyi<IT, VT>(100, 100, 10, 8);
  auto m = erdos_renyi<IT, VT>(100, 100, 5, 9);
  auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
  EXPECT_TRUE(pattern_subset_of_mask(got, m));
}

TEST_P(MaskedSpgemmP, SparseMaskDenseInputs) {
  // Mask far sparser than the product: the pull-based regime (§4.3).
  auto a = erdos_renyi<IT, VT>(80, 80, 30, 11);
  auto b = erdos_renyi<IT, VT>(80, 80, 30, 12);
  auto m = erdos_renyi<IT, VT>(80, 80, 2, 13);
  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
  EXPECT_TRUE(matrices_near(got, want));
}

TEST_P(MaskedSpgemmP, DenseMaskSparseInputs) {
  // Inputs far sparser than the mask: the push/heap regime (§4.3).
  auto a = erdos_renyi<IT, VT>(80, 80, 2, 14);
  auto b = erdos_renyi<IT, VT>(80, 80, 2, 15);
  auto m = erdos_renyi<IT, VT>(80, 80, 40, 16);
  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
  EXPECT_TRUE(matrices_near(got, want));
}

TEST_P(MaskedSpgemmP, MaskEntriesWithoutProductAreAbsent) {
  // Fig. 1's point: the mask may contain positions where A·B has no entry.
  auto a = csr_from_dense<IT, VT>({{1, 0}, {0, 0}});
  auto b = csr_from_dense<IT, VT>({{1, 0}, {0, 1}});
  auto m = csr_from_dense<IT, VT>({{1, 1}, {1, 1}});  // full mask
  auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
  EXPECT_EQ(got.nnz(), 1u);  // only (0,0) exists in A·B
  EXPECT_EQ(got.row(0).cols[0], 0);
}

TEST_P(MaskedSpgemmP, IdentityTimesIdentity) {
  const IT n = 16;
  std::vector<Triple<IT, VT>> eye;
  for (IT i = 0; i < n; ++i) eye.push_back({i, i, 1.0});
  auto a = csr_from_triples<IT, VT>(n, n, eye);
  auto m = erdos_renyi<IT, VT>(n, n, 4, 17);
  auto got = masked_spgemm<PlusTimes<VT>>(a, a, m, opts());
  // I·I = I; masked by m: entries where m has a diagonal element.
  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, a, m);
  EXPECT_TRUE(matrices_near(got, want));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, MaskedSpgemmP,
    ::testing::Combine(::testing::ValuesIn(msx::testing::all_algos()),
                       ::testing::ValuesIn(msx::testing::all_phases())),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             to_string(std::get<1>(info.param));
    });

TEST(MaskedSpgemm, AutoAlgoMatchesReference) {
  auto a = erdos_renyi<IT, VT>(120, 120, 6, 31);
  auto b = erdos_renyi<IT, VT>(120, 120, 6, 32);
  auto m = erdos_renyi<IT, VT>(120, 120, 6, 33);
  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  MaskedOptions o;
  o.algo = MaskedAlgo::kAuto;
  auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
  EXPECT_TRUE(matrices_near(got, want));
}

TEST(MaskedSpgemm, WithPreparedCscMatchesOnTheFly) {
  auto a = erdos_renyi<IT, VT>(70, 70, 6, 41);
  auto b = erdos_renyi<IT, VT>(70, 70, 6, 42);
  auto m = erdos_renyi<IT, VT>(70, 70, 6, 43);
  auto b_csc = csr_to_csc(b);
  MaskedOptions o;
  o.algo = MaskedAlgo::kInner;
  auto c1 = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
  auto c2 = masked_spgemm_with_csc<PlusTimes<VT>>(a, b, b_csc, m, o);
  EXPECT_TRUE(matrices_near(c1, c2));
}

TEST(MaskedSpgemm, ShapeMismatchThrows) {
  CSRMatrix<IT, VT> a(3, 4), b(5, 3), m(3, 3);
  EXPECT_THROW((masked_spgemm<PlusTimes<VT>>(a, b, m)),
               std::invalid_argument);
  CSRMatrix<IT, VT> b2(4, 3), m2(2, 3);
  EXPECT_THROW((masked_spgemm<PlusTimes<VT>>(a, b2, m2)),
               std::invalid_argument);
}

TEST(MaskedSpgemm, HeapNInspectVariantsAgree) {
  auto a = erdos_renyi<IT, VT>(90, 90, 7, 51);
  auto b = erdos_renyi<IT, VT>(90, 90, 7, 52);
  auto m = erdos_renyi<IT, VT>(90, 90, 7, 53);
  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  for (std::size_t ninspect : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                               kNInspectInfinity}) {
    MaskedOptions o;
    o.algo = MaskedAlgo::kHeap;
    o.heap_ninspect = ninspect;
    auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
    EXPECT_TRUE(matrices_near(got, want)) << "ninspect " << ninspect;
  }
}

}  // namespace
}  // namespace msx
