// Masked SpGEVM (v = m ⊙ u⊺B) — consistency with the matrix-level kernels
// and with a dense reference, across all algorithm families.
#include "core/masked_spgevm.hpp"

#include <gtest/gtest.h>

#include "core/reference.hpp"
#include "gen/erdos_renyi.hpp"
#include "test_helpers.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;
using SV = SparseVector<IT, VT>;

SV random_vector(IT size, IT nnz, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::pair<IT, VT>> entries;
  for (IT k = 0; k < nnz; ++k) {
    entries.push_back({static_cast<IT>(rng.next_below(
                           static_cast<std::uint64_t>(size))),
                       rng.next_double() + 0.5});
  }
  return SV::from_entries(size, std::move(entries));
}

// Dense oracle for v = m ⊙ (u⊺B).
SV reference_spgevm(const SV& u, const CSRMatrix<IT, VT>& b, const SV& m,
                    MaskKind kind) {
  std::vector<VT> dense(static_cast<std::size_t>(b.ncols()), 0.0);
  std::vector<char> occupied(static_cast<std::size_t>(b.ncols()), 0);
  const auto ui = u.indices();
  const auto uv = u.values();
  for (std::size_t p = 0; p < ui.size(); ++p) {
    const auto brow = b.row(ui[p]);
    for (IT q = 0; q < brow.size(); ++q) {
      dense[static_cast<std::size_t>(brow.cols[q])] += uv[p] * brow.vals[q];
      occupied[static_cast<std::size_t>(brow.cols[q])] = 1;
    }
  }
  std::vector<char> in_mask(static_cast<std::size_t>(b.ncols()), 0);
  for (IT j : m.indices()) in_mask[static_cast<std::size_t>(j)] = 1;
  SV out(b.ncols());
  for (IT j = 0; j < b.ncols(); ++j) {
    const bool admit = (kind == MaskKind::kMask)
                           ? in_mask[static_cast<std::size_t>(j)]
                           : !in_mask[static_cast<std::size_t>(j)];
    if (admit && occupied[static_cast<std::size_t>(j)]) {
      out.push_back(j, dense[static_cast<std::size_t>(j)]);
    }
  }
  return out;
}

void expect_vectors_near(const SV& got, const SV& want) {
  ASSERT_EQ(got.nnz(), want.nnz());
  for (std::size_t p = 0; p < got.nnz(); ++p) {
    ASSERT_EQ(got.indices()[p], want.indices()[p]);
    ASSERT_NEAR(got.values()[p], want.values()[p], 1e-9);
  }
}

TEST(MaskedSpgevm, AllAlgorithmsMatchDenseReference) {
  auto b = erdos_renyi<IT, VT>(200, 150, 6, 1);
  auto u = random_vector(200, 20, 2);
  auto m = random_vector(150, 30, 3);
  auto want = reference_spgevm(u, b, m, MaskKind::kMask);
  for (auto algo : msx::testing::all_algos()) {
    MaskedOptions o;
    o.algo = algo;
    auto got = masked_spgevm<PlusTimes<VT>>(u, b, m, o);
    SCOPED_TRACE(to_string(algo));
    EXPECT_TRUE(got.validate());
    expect_vectors_near(got, want);
  }
}

TEST(MaskedSpgevm, ComplementMatchesDenseReference) {
  auto b = erdos_renyi<IT, VT>(120, 120, 5, 4);
  auto u = random_vector(120, 15, 5);
  auto m = random_vector(120, 25, 6);
  auto want = reference_spgevm(u, b, m, MaskKind::kComplement);
  for (auto algo : msx::testing::complement_algos()) {
    MaskedOptions o;
    o.algo = algo;
    o.kind = MaskKind::kComplement;
    auto got = masked_spgevm<PlusTimes<VT>>(u, b, m, o);
    SCOPED_TRACE(to_string(algo));
    expect_vectors_near(got, want);
  }
}

TEST(MaskedSpgevm, EmptyOperands) {
  auto b = erdos_renyi<IT, VT>(50, 50, 4, 7);
  SV empty_u(50);
  auto m = random_vector(50, 10, 8);
  auto got = masked_spgevm<PlusTimes<VT>>(empty_u, b, m);
  EXPECT_TRUE(got.empty());

  auto u = random_vector(50, 5, 9);
  SV empty_m(50);
  auto got2 = masked_spgevm<PlusTimes<VT>>(u, b, empty_m);
  EXPECT_TRUE(got2.empty());
  // Complemented empty mask = full product row.
  MaskedOptions o;
  o.kind = MaskKind::kComplement;
  o.algo = MaskedAlgo::kMSA;
  auto got3 = masked_spgevm<PlusTimes<VT>>(u, b, empty_m, o);
  EXPECT_GT(got3.nnz(), 0u);
}

TEST(MaskedSpgevm, SizeMismatchThrows) {
  auto b = erdos_renyi<IT, VT>(10, 20, 2, 1);
  SV u(5), m(20);
  EXPECT_THROW((masked_spgevm<PlusTimes<VT>>(u, b, m)),
               std::invalid_argument);
  SV u2(10), m2(5);
  EXPECT_THROW((masked_spgevm<PlusTimes<VT>>(u2, b, m2)),
               std::invalid_argument);
}

TEST(MaskedSpgevm, WithCscMatchesDefault) {
  auto b = erdos_renyi<IT, VT>(80, 80, 5, 10);
  auto b_csc = csr_to_csc(b);
  auto u = random_vector(80, 10, 11);
  auto m = random_vector(80, 15, 12);
  MaskedOptions o;
  o.algo = MaskedAlgo::kInner;
  auto v1 = masked_spgevm<PlusTimes<VT>>(u, b, m, o);
  auto v2 = masked_spgevm_with_csc<PlusTimes<VT>>(u, b, b_csc, m, o);
  EXPECT_EQ(v1, v2);
}

TEST(MaskedSpgevm, AgreesWithMatrixRow) {
  // SpGEVM of row i of A must equal row i of the matrix-level product.
  auto a = erdos_renyi<IT, VT>(60, 60, 6, 13);
  auto b = erdos_renyi<IT, VT>(60, 60, 6, 14);
  auto m = erdos_renyi<IT, VT>(60, 60, 8, 15);
  auto c = masked_spgemm<PlusTimes<VT>>(a, b, m);
  for (IT i : {IT{0}, IT{17}, IT{59}}) {
    const auto arow = a.row(i);
    const auto mrow = m.row(i);
    SV u(60, std::vector<IT>(arow.cols.begin(), arow.cols.end()),
         std::vector<VT>(arow.vals.begin(), arow.vals.end()));
    SV mv(60, std::vector<IT>(mrow.cols.begin(), mrow.cols.end()),
          std::vector<VT>(mrow.vals.begin(), mrow.vals.end()));
    auto v = masked_spgevm<PlusTimes<VT>>(u, b, mv);
    const auto crow = c.row(i);
    ASSERT_EQ(v.nnz(), static_cast<std::size_t>(crow.size()));
    for (IT p = 0; p < crow.size(); ++p) {
      EXPECT_EQ(v.indices()[static_cast<std::size_t>(p)], crow.cols[p]);
      EXPECT_NEAR(v.values()[static_cast<std::size_t>(p)], crow.vals[p],
                  1e-9);
    }
  }
}

}  // namespace
}  // namespace msx
