#include "core/flops.hpp"

#include <gtest/gtest.h>

#include "gen/erdos_renyi.hpp"
#include "matrix/build.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

TEST(Flops, HandComputedSmallCase) {
  // A = [x x .; . x .], B rows with nnz {2, 1, 3}.
  auto a = csr_from_dense<IT, VT>({{1, 1, 0}, {0, 1, 0}});
  auto b = csr_from_dense<IT, VT>({{1, 1, 0}, {0, 1, 0}, {1, 1, 1}});
  // row 0 of A hits B rows 0 (2) and 1 (1) -> 3; row 1 hits B row 1 -> 1.
  EXPECT_EQ(row_flops(a, b, 0), 3u);
  EXPECT_EQ(row_flops(a, b, 1), 1u);
  EXPECT_EQ(total_flops(a, b), 4u);
}

TEST(Flops, EmptyMatrices) {
  CSRMatrix<IT, VT> a(4, 4), b(4, 4);
  EXPECT_EQ(total_flops(a, b), 0u);
}

TEST(Flops, RegularERFlopsExact) {
  // Every row of A has degree 3 and every row of B has degree 5 (exact for
  // this generator), so flops = nrows * 3 * 5.
  auto a = erdos_renyi<IT, VT>(64, 64, 3, 1);
  auto b = erdos_renyi<IT, VT>(64, 64, 5, 2);
  EXPECT_EQ(total_flops(a, b), 64u * 3u * 5u);
}

TEST(Flops, MismatchThrows) {
  CSRMatrix<IT, VT> a(4, 5), b(4, 4);
  EXPECT_THROW(total_flops(a, b), std::invalid_argument);
}

TEST(Flops, GflopsMetric) {
  EXPECT_DOUBLE_EQ(gflops(500'000'000ull, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(gflops(500'000'000ull, 0.5), 2.0);
  EXPECT_EQ(gflops(100, 0.0), 0.0);
}

}  // namespace
}  // namespace msx
