// One-phase vs two-phase equivalence (§6): both constructions must produce
// bit-identical outputs for every algorithm and mask kind.
#include <gtest/gtest.h>

#include "core/masked_spgemm.hpp"
#include "gen/erdos_renyi.hpp"
#include "matrix/build.hpp"
#include "test_helpers.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

TEST(Phases, OnePhaseEqualsTwoPhaseMasked) {
  auto a = erdos_renyi<IT, VT>(130, 130, 9, 1);
  auto b = erdos_renyi<IT, VT>(130, 130, 9, 2);
  auto m = erdos_renyi<IT, VT>(130, 130, 11, 3);
  for (auto algo : msx::testing::all_algos()) {
    MaskedOptions o1;
    o1.algo = algo;
    o1.phases = PhaseMode::kOnePhase;
    MaskedOptions o2 = o1;
    o2.phases = PhaseMode::kTwoPhase;
    auto c1 = masked_spgemm<PlusTimes<VT>>(a, b, m, o1);
    auto c2 = masked_spgemm<PlusTimes<VT>>(a, b, m, o2);
    EXPECT_EQ(c1, c2) << to_string(algo);
  }
}

TEST(Phases, OnePhaseEqualsTwoPhaseComplement) {
  auto a = erdos_renyi<IT, VT>(90, 90, 7, 4);
  auto b = erdos_renyi<IT, VT>(90, 90, 7, 5);
  auto m = erdos_renyi<IT, VT>(90, 90, 9, 6);
  for (auto algo : msx::testing::complement_algos()) {
    MaskedOptions o1;
    o1.algo = algo;
    o1.kind = MaskKind::kComplement;
    o1.phases = PhaseMode::kOnePhase;
    MaskedOptions o2 = o1;
    o2.phases = PhaseMode::kTwoPhase;
    auto c1 = masked_spgemm<PlusTimes<VT>>(a, b, m, o1);
    auto c2 = masked_spgemm<PlusTimes<VT>>(a, b, m, o2);
    EXPECT_EQ(c1, c2) << to_string(algo);
  }
}

TEST(Phases, SymbolicCountsAreExact) {
  // The 2P symbolic phase must predict exactly the numeric nnz — verified
  // indirectly by construction, directly here via the row pointers.
  auto a = erdos_renyi<IT, VT>(100, 100, 8, 7);
  auto b = erdos_renyi<IT, VT>(100, 100, 8, 8);
  auto m = erdos_renyi<IT, VT>(100, 100, 8, 9);
  MaskedOptions o;
  o.algo = MaskedAlgo::kMSA;
  o.phases = PhaseMode::kTwoPhase;
  auto c = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
  // rowptr monotone and consistent: validated by validate(); nnz matches the
  // reference.
  EXPECT_TRUE(c.validate());
  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  EXPECT_EQ(c.nnz(), want.nnz());
}

TEST(Phases, OnePhaseHandlesZeroUpperBoundRows) {
  // Rows with an empty mask row contribute a zero upper bound in 1P; ensure
  // the offsets machinery copes with interleaved zero-capacity rows.
  auto a = erdos_renyi<IT, VT>(50, 50, 5, 10);
  auto b = erdos_renyi<IT, VT>(50, 50, 5, 11);
  // Mask with entries only on even rows.
  std::vector<Triple<IT, VT>> t;
  for (IT i = 0; i < 50; i += 2) {
    for (IT j = 0; j < 50; j += 5) t.push_back({i, j, 1.0});
  }
  auto m = csr_from_triples<IT, VT>(50, 50, t);
  MaskedOptions o;
  o.phases = PhaseMode::kOnePhase;
  for (auto algo : msx::testing::all_algos()) {
    o.algo = algo;
    auto c = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
    EXPECT_TRUE(c.validate()) << to_string(algo);
    for (IT i = 1; i < 50; i += 2) EXPECT_EQ(c.row_nnz(i), 0);
  }
}

}  // namespace
}  // namespace msx
