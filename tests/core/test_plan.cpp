// Plan/execute API: a MaskedPlan must be indistinguishable from fresh
// masked_spgemm calls — across every algorithm family and both phase modes,
// for repeated execute(), value refreshes, rebinds and workspace resets.
#include "core/plan.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "core/masked_spgemm.hpp"
#include "core/reference.hpp"
#include "gen/erdos_renyi.hpp"
#include "matrix/build.hpp"
#include "test_helpers.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;
using SR = PlusTimes<VT>;
using msx::testing::matrices_near;

class PlanP : public ::testing::TestWithParam<std::tuple<MaskedAlgo, PhaseMode>> {
 protected:
  MaskedOptions opts(MaskKind kind = MaskKind::kMask) const {
    MaskedOptions o;
    o.algo = std::get<0>(GetParam());
    o.phases = std::get<1>(GetParam());
    o.kind = kind;
    return o;
  }
};

TEST_P(PlanP, ExecuteTwiceMatchesFreshCalls) {
  const auto a = erdos_renyi<IT, VT>(120, 140, 8, 1);
  const auto b = erdos_renyi<IT, VT>(140, 110, 7, 2);
  const auto m = erdos_renyi<IT, VT>(120, 110, 10, 3);

  const auto want = masked_spgemm<SR>(a, b, m, opts());
  auto plan = masked_plan<SR>(a, b, m, opts());
  const auto got1 = plan.execute();
  const auto got2 = plan.execute();
  EXPECT_TRUE(got1 == want);  // bit-identical, not just near
  EXPECT_TRUE(got2 == want);
}

TEST_P(PlanP, ExecuteTwiceMatchesFreshCallsComplement) {
  if (std::get<0>(GetParam()) == MaskedAlgo::kMCA) {
    GTEST_SKIP() << "MCA has no complement support";
  }
  const auto a = erdos_renyi<IT, VT>(90, 90, 6, 4);
  const auto b = erdos_renyi<IT, VT>(90, 90, 6, 5);
  const auto m = erdos_renyi<IT, VT>(90, 90, 30, 6);

  const auto o = opts(MaskKind::kComplement);
  const auto want = masked_spgemm<SR>(a, b, m, o);
  auto plan = masked_plan<SR>(a, b, m, o);
  EXPECT_TRUE(plan.execute() == want);
  EXPECT_TRUE(plan.execute() == want);
}

TEST_P(PlanP, ExecuteValuesMatchesFreshCallOnRefreshedMatrices) {
  auto a = erdos_renyi<IT, VT>(100, 100, 8, 7);
  auto b = erdos_renyi<IT, VT>(100, 100, 8, 8);
  const auto m = erdos_renyi<IT, VT>(100, 100, 12, 9);

  auto plan = masked_plan<SR>(a, b, m, opts());
  (void)plan.execute();  // warm, with the original values

  // New numerics, same sparsity.
  std::vector<VT> new_a(a.nnz()), new_b(b.nnz());
  for (std::size_t p = 0; p < new_a.size(); ++p) {
    new_a[p] = static_cast<VT>(p % 17) + 0.25;
  }
  for (std::size_t p = 0; p < new_b.size(); ++p) {
    new_b[p] = static_cast<VT>(p % 13) - 2.5;
  }
  const auto got = plan.execute_values(new_a, new_b);

  std::copy(new_a.begin(), new_a.end(), a.mutable_values().begin());
  std::copy(new_b.begin(), new_b.end(), b.mutable_values().begin());
  const auto want = masked_spgemm<SR>(a, b, m, opts());
  EXPECT_TRUE(got == want);

  // Refreshing only one operand (empty span = unchanged) also matches.
  for (auto& v : new_b) v *= -1.0;
  const auto got_b_only = plan.execute_values({}, new_b);
  std::copy(new_b.begin(), new_b.end(), b.mutable_values().begin());
  EXPECT_TRUE(got_b_only == masked_spgemm<SR>(a, b, m, opts()));
}

TEST_P(PlanP, RebindMatchesFreshCallOnNewStructure) {
  const auto a1 = erdos_renyi<IT, VT>(80, 80, 6, 10);
  const auto m1 = erdos_renyi<IT, VT>(80, 80, 9, 11);
  const auto b = erdos_renyi<IT, VT>(80, 80, 6, 12);

  auto plan = masked_plan<SR>(a1, b, m1, opts());
  (void)plan.execute();

  // Full rebind: all three operands change (different sizes too).
  const auto a2 = erdos_renyi<IT, VT>(60, 70, 5, 13);
  const auto b2 = erdos_renyi<IT, VT>(70, 50, 5, 14);
  const auto m2 = erdos_renyi<IT, VT>(60, 50, 8, 15);
  plan.rebind(a2, b2, m2);
  EXPECT_TRUE(plan.execute() == masked_spgemm<SR>(a2, b2, m2, opts()));

  // Stationary-B rebind: only A and the mask change.
  const auto a3 = erdos_renyi<IT, VT>(40, 70, 6, 16);
  const auto m3 = erdos_renyi<IT, VT>(40, 50, 7, 17);
  plan.rebind(a3, m3);
  EXPECT_TRUE(plan.execute() == masked_spgemm<SR>(a3, b2, m3, opts()));
}

TEST_P(PlanP, ResetWorkspacesKeepsResultsIdentical) {
  const auto a = erdos_renyi<IT, VT>(70, 70, 7, 18);
  const auto b = erdos_renyi<IT, VT>(70, 70, 7, 19);
  const auto m = erdos_renyi<IT, VT>(70, 70, 9, 20);

  auto plan = masked_plan<SR>(a, b, m, opts());
  const auto want = plan.execute();
  plan.reset_workspaces();
  EXPECT_TRUE(plan.execute() == want);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, PlanP,
    ::testing::Combine(::testing::ValuesIn(msx::testing::all_algos()),
                       ::testing::ValuesIn(msx::testing::all_phases())),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             to_string(std::get<1>(info.param));
    });

TEST_P(PlanP, AliasedOperandsMatchDistinctCopies) {
  // The k-truss shape: one matrix serves as A, B and mask. The plan stores a
  // single copy; results must match binding three distinct copies.
  const auto a = erdos_renyi<IT, VT>(70, 70, 6, 40);
  const auto a_copy1 = a;
  const auto a_copy2 = a;

  auto plan = masked_plan<SR>(a, a, a, opts());
  const auto want = masked_spgemm<SR>(a, a_copy1, a_copy2, opts());
  EXPECT_TRUE(plan.execute() == want);
  EXPECT_TRUE(plan.execute() == want);

  // Full aliased rebind (the pruning iteration).
  const auto a2 = erdos_renyi<IT, VT>(50, 50, 5, 41);
  plan.rebind(a2, a2, a2);
  EXPECT_TRUE(plan.execute() == masked_spgemm<SR>(a2, a2, a2, opts()));

  // Stationary-B rebind off an aliased plan: B must be materialized from
  // the outgoing A before A is replaced.
  const auto a3 = erdos_renyi<IT, VT>(50, 50, 6, 42);
  const auto m3 = erdos_renyi<IT, VT>(50, 50, 7, 43);
  plan.rebind(a3, m3);
  EXPECT_TRUE(plan.execute() == masked_spgemm<SR>(a3, a2, m3, opts()));

  // Mask aliasing B only.
  const auto b4 = erdos_renyi<IT, VT>(70, 70, 6, 44);
  auto plan_mb = masked_plan<SR>(a, b4, b4, opts());
  EXPECT_TRUE(plan_mb.execute() == masked_spgemm<SR>(a, b4, b4, opts()));
}

TEST_P(PlanP, AliasedExecuteValuesRefreshesTheSharedMatrix) {
  auto a = erdos_renyi<IT, VT>(60, 60, 6, 45);
  auto plan = masked_plan<SR>(a, a, a, opts());
  (void)plan.execute();

  std::vector<VT> fresh(a.nnz());
  for (std::size_t p = 0; p < fresh.size(); ++p) {
    fresh[p] = static_cast<VT>(p % 11) + 1.5;
  }
  // B aliases A: refreshing "B" refreshes the one stored matrix.
  const auto got = plan.execute_values(fresh, fresh);
  std::copy(fresh.begin(), fresh.end(), a.mutable_values().begin());
  EXPECT_TRUE(got == masked_spgemm<SR>(a, a, a, opts()));
}

TEST(Plan, InvalidateSymbolicCacheKeepsResultsIdentical) {
  const auto a = erdos_renyi<IT, VT>(80, 80, 7, 46);
  const auto b = erdos_renyi<IT, VT>(80, 80, 7, 47);
  const auto m = erdos_renyi<IT, VT>(80, 80, 9, 48);
  MaskedOptions o;
  o.algo = MaskedAlgo::kHash;
  o.phases = PhaseMode::kTwoPhase;
  auto plan = masked_plan<SR>(a, b, m, o);
  const auto want = plan.execute();
  plan.invalidate_symbolic_cache();
  EXPECT_TRUE(plan.execute() == want);
}

TEST(Plan, PartitionCacheSurvivesValueRefreshAndDiesOnRebind) {
  const auto a = erdos_renyi<IT, VT>(120, 120, 8, 61);
  const auto b = erdos_renyi<IT, VT>(120, 120, 8, 62);
  const auto m = erdos_renyi<IT, VT>(120, 120, 10, 63);
  MaskedOptions o;
  o.algo = MaskedAlgo::kHash;
  o.schedule = Schedule::kFlopBalanced;
  auto plan = masked_plan<SR>(a, b, m, o);
  EXPECT_FALSE(plan.partition_cached());  // built lazily by execute()

  const auto want = plan.execute();
  EXPECT_TRUE(plan.partition_cached());
  EXPECT_GE(plan.partition_blocks(), 1);

  // Value refresh keeps the partition (cost depends only on structure).
  std::vector<VT> fresh(a.nnz(), 2.0);
  (void)plan.execute_values(fresh, {});
  EXPECT_TRUE(plan.partition_cached());

  // Rebind to new structure must drop it.
  const auto a2 = erdos_renyi<IT, VT>(150, 150, 8, 64);
  const auto m2 = erdos_renyi<IT, VT>(150, 150, 10, 65);
  plan.rebind(a2, a2, m2);
  EXPECT_FALSE(plan.partition_cached());
  (void)plan.execute();
  EXPECT_TRUE(plan.partition_cached());

  // Explicit invalidation mirrors the symbolic cache and keeps results.
  plan.rebind(a, b, m);
  const auto again = plan.execute();
  EXPECT_TRUE(again == want);
  plan.invalidate_partition_cache();
  EXPECT_FALSE(plan.partition_cached());
  EXPECT_TRUE(plan.execute() == want);
}

TEST(Plan, NonFlopBalancedSchedulesBuildNoPartition) {
  const auto a = erdos_renyi<IT, VT>(60, 60, 5, 66);
  MaskedOptions o;
  o.algo = MaskedAlgo::kMSA;
  o.schedule = Schedule::kDynamic;
  auto plan = masked_plan<SR>(a, a, a, o);
  (void)plan.execute();
  EXPECT_FALSE(plan.partition_cached());
}

TEST(Plan, AutoScheduleResolvesToFlopBalancedAndExplicitIsHonoured) {
  // Large enough that the O(1) work hint clears the tiny-input cutoff
  // (nnz(A) × mean B degree ≈ 10000 × 20 = 2e5 > kAutoScheduleTinyWork).
  const auto a = erdos_renyi<IT, VT>(500, 500, 20, 67);
  auto plan = masked_plan<SR>(a, a, a);  // default options: schedule kAuto
  EXPECT_EQ(plan.options().schedule, Schedule::kAuto);
  (void)plan.execute();
  EXPECT_TRUE(plan.partition_cached());  // kAuto ran the partition

  // Every explicitly chosen schedule — including kDynamic, which used to be
  // indistinguishable from the default — runs as requested, with no
  // partition built behind the caller's back.
  for (Schedule s :
       {Schedule::kStatic, Schedule::kDynamic, Schedule::kGuided}) {
    MaskedOptions o;
    o.schedule = s;
    auto pinned = masked_plan<SR>(a, a, a, o);
    EXPECT_EQ(pinned.options().schedule, s);
    (void)pinned.execute();
    EXPECT_FALSE(pinned.partition_cached()) << to_string(s);
  }
}

TEST(Plan, StaleBlockBoundNeverSurvivesIntoNonPartitionedRuns) {
  // Regression: a flop-balanced run sizes MSA/Hash workspaces per block and
  // leaves each workspace's column bound at the width of the last block it
  // ran. rebind() deliberately retains workspaces, so a later run that
  // skips the per-block prologue — here a serial-context execute, which
  // downgrades the partition to a plain row loop — on a *wider* structure
  // must not inherit the old bound: the grow-only accumulator arrays would
  // stay at the narrow size while rows probe far wider columns.
  const auto narrow = erdos_renyi<IT, VT>(60, 60, 6, 171);   // ncols 60
  const auto wide = erdos_renyi<IT, VT>(500, 500, 2, 172);   // ncols 500

  for (MaskedAlgo algo : {MaskedAlgo::kMSA, MaskedAlgo::kMSABitmap,
                          MaskedAlgo::kHash}) {
    for (MaskKind kind : {MaskKind::kMask, MaskKind::kComplement}) {
      MaskedOptions o;
      o.algo = algo;
      o.kind = kind;
      o.schedule = Schedule::kFlopBalanced;
      auto plan = masked_plan<SR>(narrow, narrow, narrow, o);
      (void)plan.execute();  // partitioned: every slot's bound is <= 60
      plan.rebind(wide, wide, wide);
      const auto want = masked_spgemm<SR>(wide, wide, wide, o);
      EXPECT_TRUE(plan.execute(ExecContext::serial()) == want)
          << to_string(algo) << "/" << to_string(kind);
    }
  }
}

TEST(Plan, AutoScheduleStaysStaticBelowTinyWorkCutoff) {
  // ~80×6 rows: the work hint (~2900 estimated multiplies) is far below
  // kAutoScheduleTinyWork, so kAuto skips the partition prefix sum entirely
  // — results are unchanged (schedules are result-invariant).
  const auto a = erdos_renyi<IT, VT>(80, 80, 6, 68);
  auto plan = masked_plan<SR>(a, a, a);
  const auto got = plan.execute();
  EXPECT_FALSE(plan.partition_cached());

  // An explicit kFlopBalanced request on the same tiny input is honoured.
  MaskedOptions o;
  o.schedule = Schedule::kFlopBalanced;
  auto pinned = masked_plan<SR>(a, a, a, o);
  EXPECT_TRUE(pinned.execute() == got);
  EXPECT_TRUE(pinned.partition_cached());
}

TEST(Plan, AutoResolvesOnceAndMatchesStatelessAuto) {
  const auto a = erdos_renyi<IT, VT>(100, 100, 20, 21);
  const auto b = erdos_renyi<IT, VT>(100, 100, 20, 22);
  const auto m = erdos_renyi<IT, VT>(100, 100, 2, 23);

  auto plan = masked_plan<SR>(a, b, m);  // default options: kAuto
  EXPECT_NE(plan.algo(), MaskedAlgo::kAuto);
  EXPECT_TRUE(plan.execute() == masked_spgemm<SR>(a, b, m));
}

TEST(Plan, CachesCscOnlyForPullBasedFamilies) {
  const auto a = erdos_renyi<IT, VT>(50, 50, 5, 24);
  const auto b = erdos_renyi<IT, VT>(50, 50, 5, 25);
  const auto m = erdos_renyi<IT, VT>(50, 50, 5, 26);

  MaskedOptions inner;
  inner.algo = MaskedAlgo::kInner;
  MaskedOptions msa;
  msa.algo = MaskedAlgo::kMSA;
  EXPECT_TRUE(masked_plan<SR>(a, b, m, inner).caches_csc());
  EXPECT_FALSE(masked_plan<SR>(a, b, m, msa).caches_csc());
}

TEST(Plan, RejectsUnsupportedCombination) {
  const auto a = erdos_renyi<IT, VT>(30, 30, 4, 27);
  MaskedOptions o;
  o.algo = MaskedAlgo::kMCA;
  o.kind = MaskKind::kComplement;
  EXPECT_THROW((masked_plan<SR>(a, a, a, o)), std::invalid_argument);
}

TEST(Plan, RejectsValueRefreshWithWrongSize) {
  const auto a = erdos_renyi<IT, VT>(30, 30, 4, 28);
  auto plan = masked_plan<SR>(a, a, a);
  std::vector<VT> wrong(a.nnz() + 3, 1.0);
  EXPECT_THROW((void)plan.execute_values(wrong, {}), std::invalid_argument);
  EXPECT_THROW((void)plan.execute_values({}, wrong), std::invalid_argument);
}

TEST(Plan, SecondExecutePaysNoLazySetup) {
  const auto a = erdos_renyi<IT, VT>(200, 200, 10, 29);
  const auto b = erdos_renyi<IT, VT>(200, 200, 10, 30);
  const auto m = erdos_renyi<IT, VT>(200, 200, 4, 31);
  MaskedOptions o;
  o.algo = MaskedAlgo::kInner;
  auto plan = masked_plan<SR>(a, b, m, o);
  (void)plan.execute();
  (void)plan.execute();
  EXPECT_EQ(plan.last_execute_setup_seconds(), 0.0);
}

// The complemented Heap path now honours heap_ninspect via complement-aware
// look-ahead; every setting must agree with the serial reference.
TEST(Plan, HeapComplementHonoursNinspect) {
  const auto a = erdos_renyi<IT, VT>(80, 80, 6, 32);
  const auto b = erdos_renyi<IT, VT>(80, 80, 6, 33);
  const auto m = erdos_renyi<IT, VT>(80, 80, 25, 34);

  MaskedOptions base;
  base.algo = MaskedAlgo::kHeap;
  base.kind = MaskKind::kComplement;
  const auto want =
      reference_masked_spgemm<SR>(a, b, m, MaskKind::kComplement);
  for (std::size_t ninspect : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                               kNInspectInfinity}) {
    for (PhaseMode ph : msx::testing::all_phases()) {
      MaskedOptions o = base;
      o.heap_ninspect = ninspect;
      o.phases = ph;
      auto plan = masked_plan<SR>(a, b, m, o);
      EXPECT_TRUE(matrices_near(plan.execute(), want))
          << "ninspect=" << ninspect << " " << to_string(ph);
    }
  }
}

}  // namespace
}  // namespace msx
