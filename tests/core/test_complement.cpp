// Complemented-mask correctness: C = ¬M .* (A·B) for every supporting
// scheme (§5.2/§5.3/§5.5 complement variants; MCA excluded per §8.4).
#include <gtest/gtest.h>

#include <tuple>

#include "core/masked_spgemm.hpp"
#include "core/reference.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "matrix/build.hpp"
#include "test_helpers.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;
using msx::testing::matrices_near;
using msx::testing::pattern_disjoint_from_mask;

class ComplementP
    : public ::testing::TestWithParam<std::tuple<MaskedAlgo, PhaseMode>> {
 protected:
  MaskedOptions opts() const {
    MaskedOptions o;
    o.algo = std::get<0>(GetParam());
    o.phases = std::get<1>(GetParam());
    o.kind = MaskKind::kComplement;
    return o;
  }
};

TEST_P(ComplementP, MatchesReference) {
  for (std::uint64_t seed : {1u, 2u}) {
    auto a = erdos_renyi<IT, VT>(90, 90, 6, seed);
    auto b = erdos_renyi<IT, VT>(90, 90, 6, seed + 7);
    auto m = erdos_renyi<IT, VT>(90, 90, 10, seed + 14);
    auto want =
        reference_masked_spgemm<PlusTimes<VT>>(a, b, m, MaskKind::kComplement);
    auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
    EXPECT_TRUE(matrices_near(got, want)) << "seed " << seed;
    EXPECT_TRUE(got.validate());
  }
}

TEST_P(ComplementP, OutputDisjointFromMask) {
  auto a = erdos_renyi<IT, VT>(70, 70, 8, 21);
  auto b = erdos_renyi<IT, VT>(70, 70, 8, 22);
  auto m = erdos_renyi<IT, VT>(70, 70, 8, 23);
  auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
  EXPECT_TRUE(pattern_disjoint_from_mask(got, m));
}

TEST_P(ComplementP, EmptyMaskGivesFullProduct) {
  auto a = erdos_renyi<IT, VT>(50, 50, 5, 31);
  auto b = erdos_renyi<IT, VT>(50, 50, 5, 32);
  CSRMatrix<IT, VT> empty_mask(50, 50);
  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, empty_mask,
                                                     MaskKind::kComplement);
  auto got = masked_spgemm<PlusTimes<VT>>(a, b, empty_mask, opts());
  EXPECT_TRUE(matrices_near(got, want));
  EXPECT_GT(got.nnz(), 0u);
}

TEST_P(ComplementP, FullMaskGivesEmptyOutput) {
  const IT n = 30;
  std::vector<Triple<IT, VT>> full;
  for (IT i = 0; i < n; ++i) {
    for (IT j = 0; j < n; ++j) full.push_back({i, j, 1.0});
  }
  auto m = csr_from_triples<IT, VT>(n, n, full);
  auto a = erdos_renyi<IT, VT>(n, n, 4, 41);
  auto b = erdos_renyi<IT, VT>(n, n, 4, 42);
  auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
  EXPECT_EQ(got.nnz(), 0u);
}

TEST_P(ComplementP, RectangularShapes) {
  auto a = erdos_renyi<IT, VT>(40, 60, 5, 51);
  auto b = erdos_renyi<IT, VT>(60, 25, 4, 52);
  auto m = erdos_renyi<IT, VT>(40, 25, 6, 53);
  auto want =
      reference_masked_spgemm<PlusTimes<VT>>(a, b, m, MaskKind::kComplement);
  auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
  EXPECT_TRUE(matrices_near(got, want));
}

TEST_P(ComplementP, SkewedRmat) {
  auto a = rmat<IT, VT>(7, 61);
  auto b = rmat<IT, VT>(7, 62);
  auto m = rmat<IT, VT>(7, 63);
  auto want =
      reference_masked_spgemm<PlusTimes<VT>>(a, b, m, MaskKind::kComplement);
  auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, opts());
  EXPECT_TRUE(matrices_near(got, want));
}

INSTANTIATE_TEST_SUITE_P(
    ComplementSchemes, ComplementP,
    ::testing::Combine(::testing::ValuesIn(msx::testing::complement_algos()),
                       ::testing::ValuesIn(msx::testing::all_phases())),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             to_string(std::get<1>(info.param));
    });

TEST(Complement, MCARejectsComplement) {
  auto a = erdos_renyi<IT, VT>(10, 10, 2, 1);
  MaskedOptions o;
  o.algo = MaskedAlgo::kMCA;
  o.kind = MaskKind::kComplement;
  EXPECT_THROW((masked_spgemm<PlusTimes<VT>>(a, a, a, o)),
               std::invalid_argument);
}

TEST(Complement, MaskedPlusComplementCoversProduct) {
  // Partition property: mask ⊙ P and ¬mask ⊙ P partition the entries of
  // P = A·B.
  auto a = erdos_renyi<IT, VT>(60, 60, 6, 71);
  auto b = erdos_renyi<IT, VT>(60, 60, 6, 72);
  auto m = erdos_renyi<IT, VT>(60, 60, 6, 73);
  MaskedOptions o;
  o.algo = MaskedAlgo::kMSA;
  auto masked = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
  o.kind = MaskKind::kComplement;
  auto comp = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
  CSRMatrix<IT, VT> full_mask(60, 60);  // empty mask complement = full product
  auto product = masked_spgemm<PlusTimes<VT>>(a, b, full_mask, o);
  EXPECT_EQ(masked.nnz() + comp.nnz(), product.nnz());
}

}  // namespace
}  // namespace msx
