// Shared helpers for the masked-SpGEMM correctness suites.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/masked_spgemm.hpp"
#include "core/options.hpp"
#include "core/reference.hpp"
#include "matrix/csr.hpp"

namespace msx::testing {

inline std::vector<MaskedAlgo> all_algos() {
  return {MaskedAlgo::kMSA,  MaskedAlgo::kHash,    MaskedAlgo::kMCA,
          MaskedAlgo::kHeap, MaskedAlgo::kHeapDot, MaskedAlgo::kInner,
          MaskedAlgo::kHybrid, MaskedAlgo::kMSABitmap};
}

// Algorithms that support complemented masks (all but MCA; kMSABitmap falls
// back to the byte-state MSA for complements).
inline std::vector<MaskedAlgo> complement_algos() {
  return {MaskedAlgo::kMSA,  MaskedAlgo::kHash,  MaskedAlgo::kHeap,
          MaskedAlgo::kHeapDot, MaskedAlgo::kInner, MaskedAlgo::kHybrid,
          MaskedAlgo::kMSABitmap};
}

inline std::vector<PhaseMode> all_phases() {
  return {PhaseMode::kOnePhase, PhaseMode::kTwoPhase};
}

// Pattern + value comparison with a tolerance for floating-point values.
template <class IT, class VT>
::testing::AssertionResult matrices_near(const CSRMatrix<IT, VT>& got,
                                         const CSRMatrix<IT, VT>& want,
                                         double tol = 1e-9) {
  if (got.nrows() != want.nrows() || got.ncols() != want.ncols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: got " << got.nrows() << "x" << got.ncols()
           << " want " << want.nrows() << "x" << want.ncols();
  }
  if (got.nnz() != want.nnz()) {
    return ::testing::AssertionFailure()
           << "nnz mismatch: got " << got.nnz() << " want " << want.nnz();
  }
  for (IT i = 0; i < got.nrows(); ++i) {
    const auto g = got.row(i);
    const auto w = want.row(i);
    if (g.size() != w.size()) {
      return ::testing::AssertionFailure()
             << "row " << i << " size mismatch: got " << g.size() << " want "
             << w.size();
    }
    for (IT p = 0; p < g.size(); ++p) {
      if (g.cols[p] != w.cols[p]) {
        return ::testing::AssertionFailure()
               << "row " << i << " col mismatch at slot " << p << ": got "
               << g.cols[p] << " want " << w.cols[p];
      }
      const double diff =
          std::abs(static_cast<double>(g.vals[p]) -
                   static_cast<double>(w.vals[p]));
      if (diff > tol) {
        return ::testing::AssertionFailure()
               << "row " << i << " value mismatch at col " << g.cols[p]
               << ": got " << g.vals[p] << " want " << w.vals[p];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// True iff every entry position of `c` appears in the pattern of `m`.
template <class IT, class VT, class MT>
bool pattern_subset_of_mask(const CSRMatrix<IT, VT>& c,
                            const CSRMatrix<IT, MT>& m) {
  for (IT i = 0; i < c.nrows(); ++i) {
    const auto crow = c.row(i);
    const auto mrow = m.row(i);
    IT pm = 0;
    for (IT p = 0; p < crow.size(); ++p) {
      while (pm < mrow.size() && mrow.cols[pm] < crow.cols[p]) ++pm;
      if (pm >= mrow.size() || mrow.cols[pm] != crow.cols[p]) return false;
    }
  }
  return true;
}

// True iff no entry position of `c` appears in the pattern of `m`.
template <class IT, class VT, class MT>
bool pattern_disjoint_from_mask(const CSRMatrix<IT, VT>& c,
                                const CSRMatrix<IT, MT>& m) {
  for (IT i = 0; i < c.nrows(); ++i) {
    const auto crow = c.row(i);
    const auto mrow = m.row(i);
    IT pm = 0;
    for (IT p = 0; p < crow.size(); ++p) {
      while (pm < mrow.size() && mrow.cols[pm] < crow.cols[p]) ++pm;
      if (pm < mrow.size() && mrow.cols[pm] == crow.cols[p]) return false;
    }
  }
  return true;
}

inline std::string param_label(MaskedAlgo a, PhaseMode p) {
  return scheme_name(a, p);
}

}  // namespace msx::testing
