// The Hybrid per-row selector (§9 future-work extension): correctness plus
// sanity of the pull/push decision rule.
#include <gtest/gtest.h>

#include "core/hybrid_kernel.hpp"
#include "core/masked_spgemm.hpp"
#include "core/reference.hpp"
#include "gen/erdos_renyi.hpp"
#include "matrix/build.hpp"
#include "matrix/convert.hpp"
#include "test_helpers.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;
using msx::testing::matrices_near;

TEST(Hybrid, MatchesReferenceOnMixedDensityRows) {
  // Construct a matrix whose rows alternate between dense-input/sparse-mask
  // (pull-friendly) and sparse-input/dense-mask (push-friendly) so both
  // paths execute within one call.
  const IT n = 64;
  std::vector<Triple<IT, VT>> ta, tm;
  Xoshiro256 rng(5);
  for (IT i = 0; i < n; ++i) {
    const bool heavy = (i % 2 == 0);
    const IT arow_deg = heavy ? 30 : 2;
    const IT mrow_deg = heavy ? 2 : 30;
    for (IT k = 0; k < arow_deg; ++k) {
      ta.push_back({i, static_cast<IT>(rng.next_below(n)), 1.0});
    }
    for (IT k = 0; k < mrow_deg; ++k) {
      tm.push_back({i, static_cast<IT>(rng.next_below(n)), 1.0});
    }
  }
  auto a = csr_from_triples<IT, VT>(n, n, ta, DuplicatePolicy::kLast);
  auto m = csr_from_triples<IT, VT>(n, n, tm, DuplicatePolicy::kLast);
  auto b = erdos_renyi<IT, VT>(n, n, 8, 9);

  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  MaskedOptions o;
  o.algo = MaskedAlgo::kHybrid;
  for (auto ph : msx::testing::all_phases()) {
    o.phases = ph;
    auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
    EXPECT_TRUE(matrices_near(got, want)) << to_string(ph);
  }
}

TEST(Hybrid, DecisionPrefersPullForSparseMaskDenseRow) {
  const IT n = 100;
  auto a = erdos_renyi<IT, VT>(n, n, 50, 1);  // heavy rows
  auto b = erdos_renyi<IT, VT>(n, n, 50, 2);  // flops per row = 2500
  auto m = erdos_renyi<IT, VT>(n, n, 1, 3);   // one mask entry per row
  auto b_csc = csr_to_csc(b);
  HybridKernel<PlusTimes<VT>, IT, VT, false> kernel(a, b, b_csc, mask_of(m));
  // cost_pull = 1 * (50 + 50) = 100 << cost_push = 2500 + 1.
  EXPECT_TRUE(kernel.use_pull(0));
}

TEST(Hybrid, DecisionPrefersPushForDenseMaskSparseRow) {
  const IT n = 100;
  auto a = erdos_renyi<IT, VT>(n, n, 2, 4);
  auto b = erdos_renyi<IT, VT>(n, n, 2, 5);  // flops per row = 4
  auto m = erdos_renyi<IT, VT>(n, n, 60, 6);
  auto b_csc = csr_to_csc(b);
  HybridKernel<PlusTimes<VT>, IT, VT, false> kernel(a, b, b_csc, mask_of(m));
  // cost_pull = 60 * (2 + 2) = 240 >> cost_push = 4 + 60.
  EXPECT_FALSE(kernel.use_pull(0));
}

TEST(Hybrid, ComplementAlwaysPushes) {
  const IT n = 50;
  auto a = erdos_renyi<IT, VT>(n, n, 40, 7);
  auto b = erdos_renyi<IT, VT>(n, n, 40, 8);
  auto m = erdos_renyi<IT, VT>(n, n, 1, 9);
  auto b_csc = csr_to_csc(b);
  HybridKernel<PlusTimes<VT>, IT, VT, true> kernel(a, b, b_csc, mask_of(m));
  EXPECT_FALSE(kernel.use_pull(0));
}

TEST(Hybrid, ComplementCorrect) {
  auto a = erdos_renyi<IT, VT>(60, 60, 6, 10);
  auto b = erdos_renyi<IT, VT>(60, 60, 6, 11);
  auto m = erdos_renyi<IT, VT>(60, 60, 8, 12);
  auto want =
      reference_masked_spgemm<PlusTimes<VT>>(a, b, m, MaskKind::kComplement);
  MaskedOptions o;
  o.algo = MaskedAlgo::kHybrid;
  o.kind = MaskKind::kComplement;
  auto got = masked_spgemm<PlusTimes<VT>>(a, b, m, o);
  EXPECT_TRUE(matrices_near(got, want));
}

}  // namespace
}  // namespace msx
