#!/usr/bin/env python3
"""Perf trendline gate: diff the current run's BENCH_*.json artifacts against
the previous upload and fail on regressions (ROADMAP open item).

Records are matched by (bench name, all string-valued fields); numeric fields
are compared pairwise. Fields whose names indicate a rate (speedup, *_rate,
*per_sec*, gflops, teps) are higher-is-better; every other numeric field is
treated as a time, lower-is-better. A change worse than --threshold
(default 20%) in the bad direction fails the job.

Usage:
  perf_trend.py --previous DIR --current DIR [--threshold 0.20]
  perf_trend.py --self-test

Missing/empty --previous is not an error (first run has no baseline);
records or fields present on only one side produce warnings, not failures,
so benches can evolve without breaking the gate.
"""

import argparse
import glob
import json
import math
import os
import sys
import tempfile

HIGHER_BETTER_MARKERS = ("speedup", "rate", "per_sec", "gflops", "teps")

# Numeric fields that describe the run's configuration, not a measurement.
# Config drift (runner core count, workload size) is reported as a warning
# instead of being gated as if the code got slower.
CONFIG_FIELDS = ("jobs", "structures", "scale", "pool_threads", "threads",
                 "reps", "warmup", "scale_shift", "batch", "sources", "k",
                 "shards", "clients", "requests", "inflight", "rows",
                 "degree", "touched", "rounds",
                 # micro_streaming structural diagnostics: determined by the
                 # config (partition blocks scale with the runner's core
                 # count, migrations with the round count) — drift is worth a
                 # warning, not a perf gate.
                 "blocks_total", "blocks_refreshed", "out_rows_resymbolic",
                 "partition_kept", "symbolic_patched", "delta_migrations",
                 # micro_2d_product: grid geometry and replica placement are
                 # config; failover_lost / dist2d_panels are correctness
                 # diagnostics gated by the bench binary itself.
                 "products", "edge_factor", "row_panels", "col_panels",
                 "replicas", "dist2d_panels", "failover_lost",
                 # adaptive engine (micro_adaptive, fig7_density_grid):
                 # workload geometry plus mode-decision diagnostics — the
                 # planner's block counts and acceptance bits are checked by
                 # the bench binary, not the trend gate.
                 "dim", "dim_log2", "deg_in", "deg_mask", "remodes",
                 "feedback_hits", "blocks_sparse", "blocks_bitmap",
                 "blocks_dense", "match_best_forced", "beat_worst_forced",
                 "mixed_modes", "feedback_remode")


def is_higher_better(field):
    name = field.lower()
    return any(marker in name for marker in HIGHER_BETTER_MARKERS)


# Latency-percentile fields (latency_p50_seconds and friends, from the obs
# histograms). Gated lower-is-better like any time, but excluded from the
# whole-record noise-floor detection: a 200us p50 on an otherwise healthy
# throughput record must not exempt the throughput fields from gating. The
# percentile itself is individually exempt below the floor instead.
PERCENTILE_MARKERS = ("_p50", "_p95", "_p99")


def is_percentile(field):
    name = field.lower()
    return any(marker in name for marker in PERCENTILE_MARKERS)


def load_records(directory):
    """Returns ({match_key: {field: value}}, [warnings])."""
    records, warnings = {}, []
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            warnings.append(f"unreadable artifact {path}: {e}")
            continue
        bench = doc.get("meta", {}).get("bench", os.path.basename(path))
        for record in doc.get("records", []):
            ident = tuple(sorted(
                (k, v) for k, v in record.items() if isinstance(v, str)))
            key = (bench, ident)
            if key in records:
                warnings.append(f"duplicate record key {key} in {path}")
            records[key] = {
                k: v for k, v in record.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            }
    return records, warnings


def compare(previous, current, threshold, min_seconds=0.005, fields=None):
    """Returns (regressions, improvements, warnings) as printable rows.

    Records whose baseline timings sit below `min_seconds` are too noisy to
    gate — run-to-run jitter on shared CI runners routinely exceeds the
    threshold at the sub-millisecond scale (the er(tiny) ablation rows,
    micro-bench timings). The whole record is exempted, including ratio
    fields derived from those timings (a speedup of two sub-floor times is
    as noisy as the times themselves); everything is still compared for the
    report. Percentile fields (is_percentile) do NOT trigger the
    whole-record exemption — they are individually exempted below the floor
    instead. Config-valued fields (CONFIG_FIELDS) only ever warn. `fields`,
    when given, restricts gating to that set of field names (the
    disabled-overhead gate compares two same-commit runs on a tight
    threshold where only the throughput fields are meaningful).
    """
    regressions, improvements, warnings = [], [], []
    for key, prev_fields in sorted(previous.items()):
        if key not in current:
            warnings.append(f"record dropped: {key[0]} {dict(key[1])}")
            continue
        cur_fields = current[key]
        micro_record = any(
            f not in CONFIG_FIELDS and not is_higher_better(f)
            and not is_percentile(f)
            and v is not None and 0 < v < min_seconds
            for f, v in prev_fields.items())
        for field, prev_val in sorted(prev_fields.items()):
            if fields is not None and field not in fields:
                continue
            if field not in cur_fields:
                warnings.append(f"field dropped: {key[0]}.{field}")
                continue
            cur_val = cur_fields[field]
            if prev_val is None or cur_val is None:
                continue
            if not (math.isfinite(prev_val) and math.isfinite(cur_val)):
                continue
            if prev_val <= 0:
                continue
            ratio = cur_val / prev_val
            label = f"{key[0]} {dict(key[1])} .{field}"
            if field in CONFIG_FIELDS:
                if cur_val != prev_val:
                    warnings.append(
                        f"config drift, not gated: {label}: "
                        f"{prev_val:.6g} -> {cur_val:.6g}")
                continue
            if is_percentile(field) and prev_val < min_seconds:
                if ratio > 1.0 + threshold:
                    warnings.append(
                        f"percentile below noise floor ({min_seconds}s), "
                        f"not gated: {label}: "
                        f"{prev_val:.6g} -> {cur_val:.6g}")
                continue
            if micro_record:
                regressed = (ratio < 1.0 - threshold) if is_higher_better(
                    field) else (ratio > 1.0 + threshold)
                if regressed:
                    warnings.append(
                        f"below noise floor ({min_seconds}s), not gated: "
                        f"{label}: {prev_val:.6g} -> {cur_val:.6g}")
                continue
            if is_higher_better(field):
                if ratio < 1.0 - threshold:
                    regressions.append(
                        f"{label}: {prev_val:.6g} -> {cur_val:.6g} "
                        f"({100 * (1 - ratio):.1f}% worse, higher-is-better)")
                elif ratio > 1.0 + threshold:
                    improvements.append(
                        f"{label}: {prev_val:.6g} -> {cur_val:.6g} "
                        f"({100 * (ratio - 1):.1f}% better)")
            else:
                if ratio > 1.0 + threshold:
                    regressions.append(
                        f"{label}: {prev_val:.6g} -> {cur_val:.6g} "
                        f"({100 * (ratio - 1):.1f}% slower)")
                elif ratio < 1.0 - threshold:
                    improvements.append(
                        f"{label}: {prev_val:.6g} -> {cur_val:.6g} "
                        f"({100 * (1 - ratio):.1f}% faster)")
    for key in sorted(set(current) - set(previous)):
        warnings.append(f"new record (no baseline): {key[0]} {dict(key[1])}")
    return regressions, improvements, warnings


def run_gate(args):
    if not args.previous or not os.path.isdir(args.previous):
        print(f"perf_trend: no baseline directory at {args.previous!r}; "
              "skipping (first run)")
        return 0
    previous, warn_prev = load_records(args.previous)
    current, warn_cur = load_records(args.current)
    if not previous:
        print("perf_trend: baseline directory holds no BENCH_*.json; "
              "skipping")
        return 0
    if not current:
        print(f"perf_trend: FAIL — no BENCH_*.json found in {args.current!r} "
              "to compare against the baseline")
        return 1

    fields = None
    if getattr(args, "fields", None):
        fields = {f.strip() for f in args.fields.split(",") if f.strip()}
    regressions, improvements, warnings = compare(
        previous, current, args.threshold, args.min_seconds, fields)
    warnings = warn_prev + warn_cur + warnings

    for line in warnings:
        print(f"  [warn] {line}")
    for line in improvements:
        print(f"  [good] {line}")
    for line in regressions:
        print(f"  [REGRESSION] {line}")
    print(f"perf_trend: {len(previous)} baseline records, "
          f"{len(regressions)} regression(s), {len(improvements)} "
          f"improvement(s), threshold {100 * args.threshold:.0f}%")
    return 1 if regressions else 0


def write_artifact(directory, bench, records):
    with open(os.path.join(directory, f"BENCH_{bench}.json"), "w") as f:
        json.dump({"meta": {"bench": bench}, "records": records}, f)


def self_test():
    """Exercises the gate end to end on synthetic artifacts."""
    failures = []

    def check(name, cond):
        print(f"  {'ok' if cond else 'FAIL'}: {name}")
        if not cond:
            failures.append(name)

    with tempfile.TemporaryDirectory() as tmp:
        prev = os.path.join(tmp, "prev")
        cur = os.path.join(tmp, "cur")
        os.mkdir(prev)
        os.mkdir(cur)

        base = [
            {"graph": "rmat", "algo": "msa", "static": 1.0, "flopbal": 0.5},
            {"graph": "er", "algo": "msa", "static": 2.0, "flopbal": 2.0},
        ]
        write_artifact(prev, "ablation_schedule", base)
        write_artifact(prev, "micro_batch_throughput",
                       [{"jobs_per_sec_runtime": 1000.0, "speedup": 4.0}])

        ns = argparse.Namespace(previous=prev, current=cur, threshold=0.20,
                                min_seconds=0.005)

        # Identical artifacts pass.
        write_artifact(cur, "ablation_schedule", base)
        write_artifact(cur, "micro_batch_throughput",
                       [{"jobs_per_sec_runtime": 1000.0, "speedup": 4.0}])
        check("identical runs pass", run_gate(ns) == 0)

        # 30% slower time fails.
        slow = [dict(base[0], static=1.3), base[1]]
        write_artifact(cur, "ablation_schedule", slow)
        check("30% slower time fails", run_gate(ns) == 1)

        # 10% slower is within threshold.
        ok = [dict(base[0], static=1.1), base[1]]
        write_artifact(cur, "ablation_schedule", ok)
        check("10% slower passes", run_gate(ns) == 0)
        write_artifact(cur, "ablation_schedule", base)

        # Throughput (higher-better) dropping 30% fails...
        write_artifact(cur, "micro_batch_throughput",
                       [{"jobs_per_sec_runtime": 700.0, "speedup": 4.0}])
        check("30% lower throughput fails", run_gate(ns) == 1)
        # ...and rising 30% passes.
        write_artifact(cur, "micro_batch_throughput",
                       [{"jobs_per_sec_runtime": 1300.0, "speedup": 5.0}])
        check("higher throughput passes", run_gate(ns) == 0)
        write_artifact(cur, "micro_batch_throughput",
                       [{"jobs_per_sec_runtime": 1000.0, "speedup": 4.0}])

        # Sub-floor records never gate — neither their timings nor ratio
        # fields (speedups of noisy times are noisy) — even when 2x worse.
        noisy_prev = [{"graph": "tinytiming", "static": 0.0004,
                       "speedup_vs_best_omp": 2.0}]
        write_artifact(prev, "noisy", noisy_prev)
        write_artifact(cur, "noisy", [{"graph": "tinytiming",
                                       "static": 0.0009,
                                       "speedup_vs_best_omp": 0.9}])
        check("sub-floor record never gates", run_gate(ns) == 0)

        # Config fields (runner cores, workload knobs) warn, never gate.
        write_artifact(prev, "cfg", [{"pool_threads": 2, "jobs": 64,
                                      "runtime_seconds": 1.0}])
        write_artifact(cur, "cfg", [{"pool_threads": 4, "jobs": 64,
                                     "runtime_seconds": 1.0}])
        check("config drift warns but passes", run_gate(ns) == 0)
        write_artifact(cur, "cfg", [{"pool_threads": 4, "jobs": 64,
                                     "runtime_seconds": 1.5}])
        check("real regression still gates despite config drift",
              run_gate(ns) == 1)
        write_artifact(cur, "cfg", [{"pool_threads": 2, "jobs": 64,
                                     "runtime_seconds": 1.0}])

        # A tiny latency percentile must NOT exempt the whole record: the
        # throughput field still gates.
        write_artifact(prev, "lat", [{"jobs_per_sec_runtime": 1000.0,
                                      "latency_p50_seconds": 0.0002,
                                      "latency_p95_seconds": 0.0004}])
        write_artifact(cur, "lat", [{"jobs_per_sec_runtime": 700.0,
                                     "latency_p50_seconds": 0.0002,
                                     "latency_p95_seconds": 0.0004}])
        check("tiny percentile does not exempt throughput gating",
              run_gate(ns) == 1)
        # A sub-floor percentile itself only warns, even 5x worse...
        write_artifact(cur, "lat", [{"jobs_per_sec_runtime": 1000.0,
                                     "latency_p50_seconds": 0.001,
                                     "latency_p95_seconds": 0.0004}])
        check("sub-floor percentile warns but passes", run_gate(ns) == 0)
        # ...while a percentile above the floor gates like any time.
        write_artifact(prev, "lat", [{"jobs_per_sec_runtime": 1000.0,
                                      "latency_p95_seconds": 0.010}])
        write_artifact(cur, "lat", [{"jobs_per_sec_runtime": 1000.0,
                                     "latency_p95_seconds": 0.020}])
        check("above-floor percentile regression fails", run_gate(ns) == 1)
        os.remove(os.path.join(prev, "BENCH_lat.json"))
        os.remove(os.path.join(cur, "BENCH_lat.json"))

        # --fields whitelist: only the named fields gate.
        write_artifact(prev, "ovh", [{"jobs_per_sec_runtime": 1000.0,
                                      "runtime_seconds": 1.0}])
        write_artifact(cur, "ovh", [{"jobs_per_sec_runtime": 1000.0,
                                     "runtime_seconds": 1.5}])
        ns_fields = argparse.Namespace(
            previous=prev, current=cur, threshold=0.20, min_seconds=0.005,
            fields="jobs_per_sec_runtime")
        check("--fields skips unlisted regressions", run_gate(ns_fields) == 0)
        write_artifact(cur, "ovh", [{"jobs_per_sec_runtime": 700.0,
                                     "runtime_seconds": 1.0}])
        check("--fields gates listed regressions", run_gate(ns_fields) == 1)
        os.remove(os.path.join(prev, "BENCH_ovh.json"))
        os.remove(os.path.join(cur, "BENCH_ovh.json"))

        # New records and dropped fields warn but pass.
        extra = base + [{"graph": "tiny", "algo": "msa", "static": 0.1}]
        write_artifact(cur, "ablation_schedule", extra)
        check("new records pass with warning", run_gate(ns) == 0)

        # Missing baseline dir skips cleanly.
        ns_nobase = argparse.Namespace(
            previous=os.path.join(tmp, "nope"), current=cur, threshold=0.20,
            min_seconds=0.005)
        check("missing baseline skips", run_gate(ns_nobase) == 0)

        # Empty current dir against a real baseline fails loudly.
        empty = os.path.join(tmp, "empty")
        os.mkdir(empty)
        ns_empty = argparse.Namespace(
            previous=prev, current=empty, threshold=0.20, min_seconds=0.005)
        check("empty current fails", run_gate(ns_empty) == 1)

    if failures:
        print(f"self-test: {len(failures)} failure(s)")
        return 1
    print("self-test: all checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--previous", help="baseline artifact directory")
    parser.add_argument("--current", help="current artifact directory")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative regression tolerance (default 0.20)")
    parser.add_argument("--min-seconds", type=float, default=0.005,
                        help="time fields with a baseline below this are "
                             "reported but not gated (default 0.005)")
    parser.add_argument("--fields",
                        help="comma-separated whitelist: gate only these "
                             "field names (e.g. the disabled-overhead gate "
                             "compares jobs_per_sec_runtime alone)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in fixture suite and exit")
    args = parser.parse_args()
    if args.self_test:
        sys.exit(self_test())
    if not args.current:
        parser.error("--current is required (or use --self-test)")
    sys.exit(run_gate(args))


if __name__ == "__main__":
    main()
